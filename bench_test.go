// Package distperm_test benchmarks the regeneration of every table and
// figure in the paper's evaluation (Tables 1–3, Figures 1–7, the Eq. 12
// counterexample, and the Corollary 5/8 analyses), plus micro-benchmarks of
// the hot paths. Workloads run at experiments.TestScale so `go test
// -bench=.` completes quickly; the cmd/tables and cmd/figures binaries run
// the same code at paper scale.
package distperm_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/experiments"
	"distperm/internal/metric"
	"distperm/internal/perm"
	"distperm/internal/sisap"
	"distperm/internal/tree"
	"distperm/internal/voronoi"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/obs"
)

func benchCfg() experiments.Config { return experiments.TestScale() }

// BenchmarkTable1 regenerates the exact Euclidean counts N_{d,2}(k) for
// d = 1..10, k = 2..12 (paper Table 1), bypassing the shared memo each
// iteration by rendering the table too.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.RunTable1()
		t.Write(io.Discard)
	}
}

// BenchmarkTable2 regenerates the SISAP-analogue database counts (paper
// Table 2) at test scale.
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	cfg.SISAPScale = 400
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(cfg).Write(io.Discard)
	}
}

// BenchmarkTable3 regenerates the uniform-random-vector counts (paper
// Table 3) at test scale.
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.Config{VectorN: 5_000, VectorRuns: 1, SISAPScale: 100, GridSide: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(cfg).Write(io.Discard)
	}
}

// BenchmarkFig1Order1Voronoi rasterises the order-1 (classical) Voronoi
// diagram of the four-site configuration (paper Fig 1).
func BenchmarkFig1Order1Voronoi(b *testing.B) {
	sites := voronoi.PaperFourSites()
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: 300, H: 300}
	for i := 0; i < b.N; i++ {
		if cells := voronoi.Order(metric.L2{}, sites, 1, g).Cells(); cells != 4 {
			b.Fatalf("cells = %d", cells)
		}
	}
}

// BenchmarkFig2Order2Voronoi rasterises the order-2 diagram (paper Fig 2).
func BenchmarkFig2Order2Voronoi(b *testing.B) {
	sites := voronoi.PaperFourSites()
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: 300, H: 300}
	for i := 0; i < b.N; i++ {
		voronoi.Order(metric.L2{}, sites, 2, g)
	}
}

// BenchmarkFig3PermDiagramL2 rasterises the full distance-permutation
// diagram under L2 (paper Fig 3; 18 cells).
func BenchmarkFig3PermDiagramL2(b *testing.B) {
	sites := voronoi.PaperFourSites()
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: 300, H: 300}
	for i := 0; i < b.N; i++ {
		voronoi.Permutations(metric.L2{}, sites, g)
	}
}

// BenchmarkFig4PermDiagramL1 rasterises the full diagram under L1 (paper
// Fig 4; 18 cells, different permutation set).
func BenchmarkFig4PermDiagramL1(b *testing.B) {
	sites := voronoi.PaperFourSites()
	g := voronoi.Grid{Rect: voronoi.WidePlane, W: 300, H: 300}
	for i := 0; i < b.N; i++ {
		voronoi.Permutations(metric.L1{}, sites, g)
	}
}

// BenchmarkFig5PrefixMetric recomputes the prefix-metric example and its
// trie cross-validation (paper Fig 5).
func BenchmarkFig5PrefixMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigurePrefix()
		if !f.TrieOK {
			b.Fatal("trie mismatch")
		}
	}
}

// BenchmarkFig6Construction builds and verifies the Theorem 6 construction
// realising all k! permutations (paper Fig 6), k=5 in 4 dimensions.
func BenchmarkFig6Construction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.RunFigureConstruction(5, 2)
		if f.VerifyErr != nil {
			b.Fatal(f.VerifyErr)
		}
	}
}

// BenchmarkFig7Coverage regenerates the box-limited cell coverage series
// (paper Fig 7).
func BenchmarkFig7Coverage(b *testing.B) {
	cfg := experiments.Config{VectorN: 10_000, GridSide: 300, Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.RunFigureCoverage(cfg)
	}
}

// BenchmarkCounterexample reruns the Eq. 12 refutation (paper §5) at
// 100k points.
func BenchmarkCounterexample(b *testing.B) {
	cfg := experiments.Config{VectorN: 100_000, Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.RunCounterexample(cfg)
	}
}

// BenchmarkCorollary5 builds the tree-metric path construction and counts
// its permutations (paper §3), k = 10.
func BenchmarkCorollary5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp, sites, points := tree.Corollary5Construction(10)
		if got := core.CountDistinct(sp, sites, points); got != 46 {
			b.Fatalf("count = %d", got)
		}
	}
}

// BenchmarkStorageBits regenerates the Corollary 8 storage analysis.
func BenchmarkStorageBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunStorageTable(4, 16).Write(io.Discard)
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkPermutationL2 measures one distance-permutation computation
// (k=12 sites, 8-dim L2), the inner loop of every experiment.
func BenchmarkPermutationL2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sites := dataset.UniformVectors(rng, 12, 8)
	pm := core.NewPermuter(metric.L2{}, sites)
	y := dataset.UniformVectors(rng, 1, 8)[0]
	buf := make(perm.Permutation, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm.PermutationInto(y, buf)
	}
}

// BenchmarkCounterAdd measures the streaming distinct-permutation counter.
func BenchmarkCounterAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sites := dataset.UniformVectors(rng, 8, 4)
	pts := dataset.UniformVectors(rng, 4096, 4)
	c := core.NewCounter(metric.L2{}, sites)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(pts[i&4095])
	}
}

// BenchmarkEuclideanCount measures the memoised Theorem 7 recurrence at a
// fresh large argument each iteration cycle.
func BenchmarkEuclideanCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counting.EuclideanCount(10, 50+i%8)
	}
}

// BenchmarkKendallTau measures the O(k log k) discordant-pair count, k=64.
func BenchmarkKendallTau(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := perm.Permutation(rng.Perm(64))
	q := perm.Permutation(rng.Perm(64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm.KendallTau(p, q)
	}
}

// BenchmarkEditDistance measures the Levenshtein dynamic program on
// dictionary-length words.
func BenchmarkEditDistance(b *testing.B) {
	a, c := "counterexample", "counting"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.EditDistance(a, c)
	}
}

// benchmarkIndexKNN shares the query loop across index benchmarks.
func benchmarkIndexKNN(b *testing.B, build func(db *sisap.DB, rng *rand.Rand) sisap.Index) {
	rng := rand.New(rand.NewSource(4))
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, 2_000, 6))
	idx := build(db, rng)
	queries := dataset.UniformVectors(rng, 64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(queries[i&63], 1)
	}
}

// BenchmarkKNNLinear is the baseline scan.
func BenchmarkKNNLinear(b *testing.B) {
	benchmarkIndexKNN(b, func(db *sisap.DB, rng *rand.Rand) sisap.Index {
		return sisap.NewLinearScan(db)
	})
}

// BenchmarkKNNLAESA measures LAESA with 12 max-spread pivots.
func BenchmarkKNNLAESA(b *testing.B) {
	benchmarkIndexKNN(b, func(db *sisap.DB, rng *rand.Rand) sisap.Index {
		return sisap.NewLAESAMaxSpread(db, 12)
	})
}

// BenchmarkKNNVPTree measures the vantage-point tree.
func BenchmarkKNNVPTree(b *testing.B) {
	benchmarkIndexKNN(b, func(db *sisap.DB, rng *rand.Rand) sisap.Index {
		return sisap.NewVPTree(db, rng)
	})
}

// BenchmarkKNNPermIndexBudget measures the distperm index at a 5% scan
// budget (its intended operating point).
func BenchmarkKNNPermIndexBudget(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, 2_000, 6))
	idx := sisap.NewPermIndex(db, rng.Perm(2_000)[:12], sisap.Footrule)
	queries := dataset.UniformVectors(rng, 64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNNBudget(queries[i&63], 1, 100)
	}
}

// BenchmarkRecallCurve regenerates the distperm cost/quality curve and
// reports recall at a 5% budget as a custom metric (the search-performance
// side of the paper's storage/search trade-off).
func BenchmarkRecallCurve(b *testing.B) {
	cfg := experiments.Config{VectorN: 3_000, Seed: 1}
	var recall5 float64
	for i := 0; i < b.N; i++ {
		rc := experiments.RunRecallCurve(cfg, 4, 10, 20, sisap.Footrule)
		recall5 = rc.Recall[2] // n/20 budget
	}
	b.ReportMetric(recall5, "recall@5%")
}

// BenchmarkSiteSweep regenerates the §4 diminishing-returns sweep (bits and
// search quality vs number of sites).
func BenchmarkSiteSweep(b *testing.B) {
	cfg := experiments.Config{VectorN: 3_000, Seed: 1}
	for i := 0; i < b.N; i++ {
		experiments.RunSiteSweep(cfg, 4, []int{2, 4, 8, 16}, 10)
	}
}

// BenchmarkEngineThroughput measures batched 1-NN throughput of the public
// query engine (pkg/distperm) over the distance-permutation index as the
// worker pool grows. Each query is an exhaustive permutation-ordered scan
// (n + k evaluations), so the work parallelises across replicas; the
// queries/s metric should scale well beyond 2× from 1 to 4 workers.
func BenchmarkEngineThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 4_000, 6))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: 12, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.UniformVectors(rng, 256, 6)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e, err := distperm.NewEngine(db, idx, workers)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			served := 0
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := e.KNNBatch(queries, 1); err != nil {
					b.Fatal(err)
				}
				served += len(queries)
			}
			b.ReportMetric(float64(served)/time.Since(start).Seconds(), "queries/s")
		})
	}
}

// BenchmarkShardedThroughput measures batched 1-NN throughput of the
// scatter-gather serving layer as the shard count grows, total worker count
// held fixed: one distance-permutation index and one 2-worker Engine per
// shard, each query fanned out to every shard and merged. Per-shard indexes
// are smaller (n/S points each), so per-sub-query work shrinks as shards
// grow while the fan-out adds merge overhead — the trade-off this benchmark
// tracks as queries/s.
func BenchmarkShardedThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 4_000, 6))
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.UniformVectors(rng, 256, 6)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sx, err := distperm.BuildSharded(db,
				distperm.Spec{Index: "distperm", K: 12, Seed: 9}, shards, distperm.RoundRobin{})
			if err != nil {
				b.Fatal(err)
			}
			se, err := distperm.NewShardedEngine(sx, 2)
			if err != nil {
				b.Fatal(err)
			}
			defer se.Close()
			served := 0
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := se.KNNBatch(queries, 1); err != nil {
					b.Fatal(err)
				}
				served += len(queries)
			}
			b.ReportMetric(float64(served)/time.Since(start).Seconds(), "queries/s")
		})
	}
}

// BenchmarkCoalescedServing measures the serving subsystem's micro-batching
// coalescer (pkg/dpserver) against per-request batch submission at high
// concurrency: 64 client goroutines fire single 1-NN queries, either each
// as its own Engine.KNNBatch call (mode=per-request) or through a Coalescer
// flushing at 64 queries / 200µs (mode=coalesced). Queries are cheap (small
// database), so per-batch submission overhead — in-flight registration,
// WaitGroup traffic, engine-lock acquisitions — dominates, and the
// queries/s metric should favour coalescing.
func BenchmarkCoalescedServing(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 64, 4))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := distperm.Build(db, distperm.Spec{Index: "linear"})
	if err != nil {
		b.Fatal(err)
	}
	queries := dataset.UniformVectors(rng, 256, 4)
	const concurrency = 64

	run := func(b *testing.B, fire func(q distperm.Point) error) {
		// RunParallel spawns parallelism × GOMAXPROCS goroutines; round up
		// to at least the target concurrency.
		b.SetParallelism((concurrency + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
		b.ResetTimer()
		start := time.Now()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := fire(queries[i&255]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "queries/s")
	}

	b.Run("mode=per-request", func(b *testing.B) {
		e, err := distperm.NewEngine(db, idx, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		run(b, func(q distperm.Point) error {
			_, err := e.KNNBatch([]distperm.Point{q}, 1)
			return err
		})
	})
	b.Run("mode=coalesced", func(b *testing.B) {
		e, err := distperm.NewEngine(db, idx, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		co := dpserver.NewCoalescer(e, concurrency, 200*time.Microsecond)
		defer co.Close()
		run(b, func(q distperm.Point) error {
			_, err := co.KNN(q, 1)
			return err
		})
	})
}

// BenchmarkMutableKNN measures the live-mutation read path: batched 1-NN
// through a MutableEngine as the pending delta grows. delta=0 is the
// pass-through cost of the gather-time filter/remap; larger deltas add the
// exact linear scan each query pays until the background rebuild folds the
// writes in — the knob -rebuild-threshold trades this per-query cost
// against rebuild churn.
func BenchmarkMutableKNN(b *testing.B) {
	for _, delta := range []int{0, 256} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			rng := rand.New(rand.NewSource(13))
			db, err := distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 2_000, 6))
			if err != nil {
				b.Fatal(err)
			}
			me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
				Spec: distperm.Spec{Index: "distperm", K: 12, Seed: 13}, Workers: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer me.Close()
			for _, p := range dataset.UniformVectors(rng, delta, 6) {
				if _, err := me.Insert(p); err != nil {
					b.Fatal(err)
				}
			}
			queries := dataset.UniformVectors(rng, 64, 6)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := me.KNNBatch(queries[i&63:i&63+1], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scanOrderDB builds the ScanOrder/KNNBudget benchmark workloads at a
// representative serving size (n=20k, k=12). data=uniform is the
// permutation-rich case; data=clustered (32 tight clusters) is the paper's
// distinct ≪ n regime, where the table-encoded scan computes each
// permutation distance once per distinct permutation instead of once per
// point and the win is largest.
func scanOrderDB(b *testing.B, clustered bool) (*sisap.PermIndex, []metric.Point) {
	rng := rand.New(rand.NewSource(15))
	var pts []metric.Point
	if clustered {
		pts = dataset.ClusteredVectors(rng, 20_000, 6, 32, 0.02)
	} else {
		pts = dataset.UniformVectors(rng, 20_000, 6)
	}
	db := sisap.NewDB(metric.L2{}, pts)
	idx := sisap.NewPermIndex(db, rng.Perm(db.N())[:12], sisap.Footrule)
	queries := dataset.UniformVectors(rng, 64, 6)
	b.Logf("distinct permutations: %d of %d points", idx.DistinctPermutations(), db.N())
	return idx, queries
}

// BenchmarkScanOrder measures the full candidate-ordering pass — the heart
// of every PermIndex query: query permutation, per-distinct distance
// kernel, key scatter, counting sort.
func BenchmarkScanOrder(b *testing.B) {
	for _, data := range []string{"uniform", "clustered"} {
		b.Run("data="+data, func(b *testing.B) {
			idx, queries := scanOrderDB(b, data == "clustered")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.ScanOrder(queries[i&63])
			}
		})
	}
}

// BenchmarkKNNBudget measures the budgeted kNN at a 5% scan budget, the
// index's intended operating point: the partial counting sort orders only
// the first maxEvals candidates instead of the whole database.
func BenchmarkKNNBudget(b *testing.B) {
	for _, data := range []string{"uniform", "clustered"} {
		b.Run("data="+data, func(b *testing.B) {
			idx, queries := scanOrderDB(b, data == "clustered")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.KNNBudget(queries[i&63], 1, 1_000)
			}
		})
	}
}

// BenchmarkInstrumentedKNN prices the observability layer on the hottest
// serving shape: an 8-query budgeted batch with one latency-histogram
// Observe per query, exactly what the engine's worker loop adds per job.
// mode=noop drives a nil histogram (instrumentation compiled in, metrics
// disabled) and mode=observed a registered one; the gate in CI holds their
// gap, i.e. the cost of live instrumentation, under the bench threshold.
func BenchmarkInstrumentedKNN(b *testing.B) {
	for _, mode := range []string{"noop", "observed"} {
		b.Run("mode="+mode, func(b *testing.B) {
			idx, queries := scanOrderDB(b, false)
			qs := queries[:8]
			var h *obs.Histogram
			if mode == "observed" {
				h = obs.NewRegistry().Histogram("bench_knn_seconds", "bench", obs.DefLatencyBuckets, nil)
			}
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				qStart := time.Now()
				idx.KNNBudgetBatch(qs, 1, 1_000)
				sec := time.Since(qStart).Seconds() / float64(len(qs))
				for range qs {
					h.Observe(sec)
				}
			}
			b.ReportMetric(float64(b.N*len(qs))/time.Since(start).Seconds(), "queries/s")
		})
	}
}

// BenchmarkBatchedKernel measures the batch-native query path at the index
// level — single goroutine, so the batch win is pure kernel amortisation
// (cache-tiled table walk, 4-query register blocking), not worker
// parallelism. batch=1 pays the same table walk per query as the scalar
// path; batch=64 streams each 32 KiB tile of rank rows once per block of
// queries. ns/op is per batch; queries/s is the comparable per-query rate.
func BenchmarkBatchedKernel(b *testing.B) {
	for _, data := range []string{"uniform", "clustered"} {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("data=%s/batch=%d", data, batch), func(b *testing.B) {
				idx, queries := scanOrderDB(b, data == "clustered")
				qs := queries[:batch]
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					idx.KNNBudgetBatch(qs, 1, 1_000)
				}
				b.ReportMetric(float64(b.N*batch)/time.Since(start).Seconds(), "queries/s")
			})
		}
	}
}

// openContainer holds the one-time n=200k build behind
// BenchmarkOpenContainer: one distance-permutation index written as both a
// compact (bit-packed stream) container and a frozen (sectioned, mmap-ready)
// container. Shared across sub-benchmarks so the build and the two writes
// happen once per test process.
var openContainer struct {
	once    sync.Once
	db      *distperm.DB
	compact string
	frozen  string
	err     error
}

func openContainerFiles(b *testing.B) (*distperm.DB, string, string) {
	b.Helper()
	oc := &openContainer
	oc.once.Do(func() {
		rng := rand.New(rand.NewSource(17))
		oc.db, oc.err = distperm.NewDB(distperm.L2, dataset.UniformVectors(rng, 200_000, 6))
		if oc.err != nil {
			return
		}
		var idx distperm.Index
		if idx, oc.err = distperm.Build(oc.db,
			distperm.Spec{Index: "distperm", K: 12, Seed: 17}); oc.err != nil {
			return
		}
		dir, err := os.MkdirTemp("", "distperm-bench")
		if err != nil {
			oc.err = err
			return
		}
		oc.compact = filepath.Join(dir, "index.dpx")
		oc.frozen = filepath.Join(dir, "index.frozen")
		write := func(path string, w func(io.Writer) error) {
			if oc.err != nil {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				oc.err = err
				return
			}
			oc.err = w(f)
			if cerr := f.Close(); oc.err == nil {
				oc.err = cerr
			}
		}
		write(oc.compact, func(w io.Writer) error { _, err := distperm.WriteIndex(w, idx); return err })
		write(oc.frozen, func(w io.Writer) error {
			_, err := distperm.WriteFrozenIndex(w, idx.(*distperm.PermIndex))
			return err
		})
	})
	if oc.err != nil {
		b.Fatal(oc.err)
	}
	return oc.db, oc.compact, oc.frozen
}

// BenchmarkOpenContainer measures cold-open cost at serving scale (n=200k,
// k=12): mode=stream decodes the compact container — the restart cost every
// daemon paid before the frozen format — while mode=mmap maps the frozen
// container, verifies section checksums, and hands out views without
// copying. The gap is the daemon's O(index) → O(1) restart win; the
// open-and-queryable contract is kept honest by one budgeted kNN per open
// (a full scan would bury the open cost under 200k metric evaluations).
func BenchmarkOpenContainer(b *testing.B) {
	db, compact, frozen := openContainerFiles(b)
	q := db.Points[0]
	open := func(b *testing.B, path string, opts distperm.LoadOptions) {
		for i := 0; i < b.N; i++ {
			st, err := distperm.Load(path, opts)
			if err != nil {
				b.Fatal(err)
			}
			if rs, _ := st.Index.(*distperm.PermIndex).KNNBudget(q, 1, 64); rs[0].ID != 0 {
				b.Fatalf("self-query answered %v", rs)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("mode=stream", func(b *testing.B) { open(b, compact, distperm.LoadOptions{DB: db}) })
	b.Run("mode=mmap", func(b *testing.B) { open(b, frozen, distperm.LoadOptions{Mmap: true, DB: db}) })
}

// approxBench holds the one-time n=200k builds behind BenchmarkApproxKNN:
// one distance-permutation index per data shape plus the exact top-10
// answers for a shared query set, so each sub-benchmark can report its
// measured recall@10 next to its throughput. Shared across sub-benchmarks so
// the builds and the truth scans happen once per test process.
var approxBench struct {
	once    sync.Once
	idx     map[string]*sisap.PermIndex
	truth   map[string][][]sisap.Result
	queries map[string][]metric.Point
}

func approxBenchIndex(b *testing.B, data string) (*sisap.PermIndex, []metric.Point, [][]sisap.Result) {
	b.Helper()
	ab := &approxBench
	ab.once.Do(func() {
		rng := rand.New(rand.NewSource(19))
		ab.idx = make(map[string]*sisap.PermIndex)
		ab.truth = make(map[string][][]sisap.Result)
		ab.queries = make(map[string][]metric.Point)
		for _, name := range []string{"uniform", "clustered"} {
			var pts []metric.Point
			if name == "clustered" {
				pts = dataset.ClusteredVectors(rng, 200_000, 6, 32, 0.05)
			} else {
				pts = dataset.UniformVectors(rng, 200_000, 6)
			}
			db := sisap.NewDB(metric.L2{}, pts)
			idx := sisap.NewPermIndex(db, rng.Perm(db.N())[:12], sisap.Footrule)
			// Queries follow the data distribution — perturbed database
			// points, the workload shape a kNN serving index actually sees.
			queries := make([]metric.Point, 64)
			for i := range queries {
				base := pts[rng.Intn(len(pts))].(metric.Vector)
				q := make(metric.Vector, len(base))
				for j, v := range base {
					q[j] = v + 0.01*rng.NormFloat64()
				}
				queries[i] = q
			}
			truth := make([][]sisap.Result, len(queries))
			for i, q := range queries {
				truth[i], _ = idx.KNN(q, 10)
			}
			ab.idx[name] = idx
			ab.truth[name] = truth
			ab.queries[name] = queries
		}
	})
	return ab.idx[data], ab.queries[data], ab.truth[data]
}

// BenchmarkApproxKNN measures the prefix-bucket approximate 10-NN path at
// serving scale (n=200k, k=12 sites) against the exact table scan, sweeping
// nprobe on uniform (permutation-rich) and clustered (distinct ≪ n) data.
// Each approximate sub-benchmark reports the recall@10 of its operating
// point as a custom metric; nprobe=exact is the full-scan baseline the
// speedup is measured against. The acceptance point is the clustered sweep:
// a nprobe with recall@10 ≥ 0.9 at ≥ 5× the exact ns/op.
func BenchmarkApproxKNN(b *testing.B) {
	for _, data := range []string{"uniform", "clustered"} {
		b.Run("data="+data+"/nprobe=exact", func(b *testing.B) {
			idx, queries, _ := approxBenchIndex(b, data)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.KNN(queries[i&63], 10)
			}
			b.ReportMetric(1, "recall@10")
		})
		for _, nprobe := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("data=%s/nprobe=%d", data, nprobe), func(b *testing.B) {
				idx, queries, truth := approxBenchIndex(b, data)
				recall := 0.0
				for qi, q := range queries {
					got, _ := idx.KNNApprox(q, 10, nprobe)
					hit := 0
					for _, r := range got {
						for _, w := range truth[qi] {
							if r.ID == w.ID {
								hit++
								break
							}
						}
					}
					recall += float64(hit) / float64(len(truth[qi]))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx.KNNApprox(queries[i&63], 10, nprobe)
				}
				b.ReportMetric(recall/float64(len(queries)), "recall@10")
			})
		}
	}
}

// BenchmarkPermIndexBuild measures sharded index construction (k·n metric
// evaluations spread across NumCPU workers).
func BenchmarkPermIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, 20_000, 6))
	siteIDs := rng.Perm(db.N())[:12]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sisap.NewPermIndex(db, siteIDs, sisap.Footrule)
	}
}

// BenchmarkAblationPermDistance compares the three candidate-ordering
// permutation distances (the DESIGN.md ablation).
func BenchmarkAblationPermDistance(b *testing.B) {
	for _, d := range []sisap.PermDistance{sisap.Footrule, sisap.KendallTau, sisap.SpearmanRho} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			db := sisap.NewDB(metric.L2{}, dataset.UniformVectors(rng, 1_000, 5))
			idx := sisap.NewPermIndex(db, rng.Perm(1_000)[:10], d)
			queries := dataset.UniformVectors(rng, 32, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.ScanOrder(queries[i&31])
			}
		})
	}
}

// BenchmarkWALAppend prices durability: one insert record appended to the
// write-ahead log under each sync policy. always pays an fsync inside
// every acknowledged write (the crash-safe default), interval amortises
// the fsync over a background timer, never leaves persistence to the OS
// page cache — the measured gap is exactly what -wal-sync trades away.
func BenchmarkWALAppend(b *testing.B) {
	for _, sync := range []distperm.SyncPolicy{distperm.SyncAlways, distperm.SyncInterval, distperm.SyncNever} {
		b.Run("sync="+sync.String(), func(b *testing.B) {
			w, err := distperm.OpenWAL(b.TempDir(), distperm.WALOptions{Sync: sync})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			p := distperm.Vector{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(distperm.WALRecord{Op: distperm.WALInsert, GID: i, Point: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
