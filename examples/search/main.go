// Search comparison: the storage-vs-search trade-off the paper's counting
// results quantify, served through the public engine layer. Builds the whole
// index family over one database via the pkg/distperm Build registry, then
// answers the same 1-NN batch on each index through a concurrent Engine —
// checking every answer against the linear-scan ground truth — and reports,
// per index, the storage bits and the engine's mean distance evaluations per
// query. For the distance-permutation index it also reports how far down the
// permutation-ordered scan the true nearest neighbour sits. Finally the same
// database is partitioned across scatter-gather shards (ShardedEngine) to
// show answers stay identical while per-shard cost counters sum to the
// aggregate.
package main

import (
	"fmt"
	"math/rand"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
)

const (
	n       = 4_000
	dims    = 6
	kSites  = 12
	queries = 50
	seed    = 3
	workers = 4
	shards  = 4
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	points := dataset.UniformVectors(rng, n, dims)
	db, err := distperm.NewDB(distperm.L2, points)
	if err != nil {
		panic(err)
	}
	queryPts := dataset.UniformVectors(rng, queries, dims)

	kinds := []string{"linear", "aesa", "laesa", "distperm", "vptree", "ghtree"}
	var truth [][]distperm.Result
	var permIdx *distperm.PermIndex

	fmt.Printf("database: n=%d, %d-dim uniform, L2; %d 1-NN queries; k=%d pivots/sites; %d workers\n\n",
		n, dims, queries, kSites, workers)
	fmt.Printf("%-10s %14s %18s\n", "index", "bits", "avg dist evals")
	for _, kind := range kinds {
		idx, err := distperm.Build(db, distperm.Spec{Index: kind, K: kSites, Seed: seed})
		if err != nil {
			panic(err)
		}
		if p, ok := idx.(*distperm.PermIndex); ok {
			permIdx = p
		}
		engine, err := distperm.NewEngine(db, idx, workers)
		if err != nil {
			panic(err)
		}
		got, err := engine.KNNBatch(queryPts, 1)
		if err != nil {
			panic(err)
		}
		if truth == nil {
			truth = got // linear scan defines the correct answers
		}
		for i := range got {
			if got[i][0].ID != truth[i][0].ID {
				panic(fmt.Sprintf("%s: wrong 1-NN (%d vs %d)", idx.Name(), got[i][0].ID, truth[i][0].ID))
			}
		}
		stats := engine.Stats()
		fmt.Printf("%-10s %14d %18.1f\n", idx.Name(), idx.IndexBits(), stats.MeanEvals)
		engine.Close()
	}

	// The distperm index's exact KNN scans everything; its real value is
	// the quality of its candidate ordering and its tiny footprint.
	totalRank := 0
	for _, q := range queryPts {
		rank, _ := permIdx.EvalsToFindTrueKNN(q, 1)
		totalRank += rank
	}
	fmt.Printf("\ndistperm candidate ordering: true NN found after %.1f of %d points on average (%.2f%%)\n",
		float64(totalRank)/queries, n, 100*float64(totalRank)/queries/n)
	fmt.Printf("distperm distinct permutations stored: %d of %d points (k! = 479001600)\n",
		permIdx.DistinctPermutations(), n)
	fmt.Printf("distperm bits: naive %d, shared-table %d — the table wins once n grows\n",
		permIdx.NaiveIndexBits(), permIdx.TableIndexBits())
	fmt.Printf("               relative to the number of realisable permutations (paper §4).\n")

	// Scatter-gather sharding: the same database partitioned across shards,
	// one worker-pool engine per shard. Answers must stay byte-identical to
	// the unpartitioned ground truth, and the per-shard distance-evaluation
	// counters sum exactly to the aggregate — the paper's cost model
	// composes additively across shards.
	sx, err := distperm.BuildSharded(db,
		distperm.Spec{Index: "distperm", K: kSites, Seed: seed}, shards, distperm.RoundRobin{})
	if err != nil {
		panic(err)
	}
	se, err := distperm.NewShardedEngine(sx, workers)
	if err != nil {
		panic(err)
	}
	defer se.Close()
	got, err := se.KNNBatch(queryPts, 1)
	if err != nil {
		panic(err)
	}
	for i := range got {
		if got[i][0].ID != truth[i][0].ID {
			panic(fmt.Sprintf("sharded: wrong 1-NN (%d vs %d)", got[i][0].ID, truth[i][0].ID))
		}
	}
	fmt.Printf("\nsharded serving (%d shards × %d workers, roundrobin): all %d answers identical\n",
		se.Shards(), workers, queries)
	var sum int64
	for s, st := range se.ShardStats() {
		fmt.Printf("  shard %d: n=%d, %d evals\n", s, sx.ShardDB(s).N(), st.DistanceEvals)
		sum += st.DistanceEvals
	}
	agg := se.Stats()
	fmt.Printf("  aggregate: %d evals (per-shard sum %d — exact)\n", agg.DistanceEvals, sum)
}
