// Search comparison: the storage-vs-search trade-off the paper's counting
// results quantify. Builds the index family over one database and reports,
// per index, the storage bits and the average number of metric evaluations
// to answer 1-NN queries; for the distance-permutation index it also reports
// how far down the permutation-ordered scan the true nearest neighbour sits.
package main

import (
	"fmt"
	"math/rand"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/sisap"
)

const (
	n       = 4_000
	dims    = 6
	kSites  = 12
	queries = 50
	seed    = 3
)

func main() {
	rng := rand.New(rand.NewSource(seed))
	points := dataset.UniformVectors(rng, n, dims)
	db := sisap.NewDB(metric.L2{}, points)
	queryPts := dataset.UniformVectors(rng, queries, dims)

	pivotIDs := rng.Perm(n)[:kSites]
	permIdx := sisap.NewPermIndex(db, pivotIDs, sisap.Footrule)

	indexes := []sisap.Index{
		sisap.NewLinearScan(db),
		sisap.NewAESA(db),
		sisap.NewLAESA(db, pivotIDs),
		permIdx,
		sisap.NewVPTree(db, rng),
		sisap.NewGHTree(db, rng),
	}

	fmt.Printf("database: n=%d, %d-dim uniform, L2; %d 1-NN queries; k=%d pivots/sites\n\n",
		n, dims, queries, kSites)
	fmt.Printf("%-10s %14s %18s\n", "index", "bits", "avg dist evals")
	truth := indexes[0]
	for _, idx := range indexes {
		totalEvals := 0
		for _, q := range queryPts {
			want, _ := truth.KNN(q, 1)
			got, stats := idx.KNN(q, 1)
			if got[0].ID != want[0].ID {
				panic(fmt.Sprintf("%s: wrong 1-NN (%d vs %d)", idx.Name(), got[0].ID, want[0].ID))
			}
			totalEvals += stats.DistanceEvals
		}
		fmt.Printf("%-10s %14d %18.1f\n", idx.Name(), idx.IndexBits(), float64(totalEvals)/queries)
	}

	// The distperm index's exact KNN scans everything; its real value is
	// the quality of its candidate ordering and its tiny footprint.
	totalRank := 0
	for _, q := range queryPts {
		rank, _ := permIdx.EvalsToFindTrueKNN(q, 1)
		totalRank += rank
	}
	fmt.Printf("\ndistperm candidate ordering: true NN found after %.1f of %d points on average (%.2f%%)\n",
		float64(totalRank)/queries, n, 100*float64(totalRank)/queries/n)
	fmt.Printf("distperm distinct permutations stored: %d of %d points (k! = 479001600)\n",
		permIdx.DistinctPermutations(), n)
	fmt.Printf("distperm bits: naive %d, shared-table %d — the table wins once n grows\n",
		permIdx.NaiveIndexBits(), permIdx.TableIndexBits())
	fmt.Printf("               relative to the number of realisable permutations (paper §4).\n")
}
