// Counterexample: reproduces the paper's §5 refutation of the conjecture
// that the Euclidean maximum N_{d,2}(k) bounds every Lp metric. With the
// paper's exact five sites (Eq. 12) in three-dimensional L1 space, a uniform
// database realises more than the 96 permutations possible in Euclidean
// 3-space.
package main

import (
	"fmt"
	"os"

	"distperm/internal/experiments"
	"distperm/internal/metric"
)

func main() {
	cfg := experiments.Config{VectorN: 500_000, VectorRuns: 1, GridSide: 600, Seed: 1}
	experiments.RunCounterexample(cfg).Write(os.Stdout)

	// Rerun the paper's discovery process on a fresh random instance:
	// random site draws under L∞ in 3-space, k=5 (another of the paper's
	// reported counterexample settings).
	fmt.Println()
	search := experiments.RunCounterexampleSearch(
		experiments.Config{VectorN: 200_000, Seed: 2}, metric.LInf{}, 3, 5, 40)
	search.Write(os.Stdout)
}
