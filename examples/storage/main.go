// Storage: the paper's Corollary 8 claim, realised in actual bits — and in
// actual files, through the public pkg/distperm layer. Builds the
// distance-permutation index over databases of increasing dimensionality via
// the Build registry and compares four concrete sizes of the same
// permutation sequence:
//
//   - raw ints (what a naive implementation stores),
//   - bit-packed Lehmer ranks at ⌈lg k!⌉ bits each (the unrestricted-
//     permutation lower bound, O(k log k) per point),
//   - the shared-table encoding at ⌈lg #distinct⌉ bits per point (the
//     paper's improvement: Θ(d log k) per point in d-dimensional Euclidean
//     space, because only N(d,k) ≪ k! permutations can occur — and since
//     PR 5 what the serialized index file contains), and
//   - the bytes WriteIndex actually puts on disk (table payload + header).
//
// Low-dimensional data compresses dramatically under the table encoding;
// as d grows toward k−1 the advantage vanishes — exactly the paper's story.
package main

import (
	"fmt"
	"io"
	"math/rand"

	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/pkg/distperm"
)

const (
	n     = 100_000
	k     = 10
	seed  = 11
	maxD  = 8
	width = 12
)

func main() {
	fmt.Printf("n = %d points, k = %d sites, Euclidean metric\n\n", n, k)
	fmt.Printf("%3s %10s | %*s %*s %*s %*s | %9s %12s\n",
		"d", "distinct", width, "raw bits", width, "packed bits", width, "table bits",
		width, "file bytes", "N(d,k)", "lg N / lg k!")
	for d := 1; d <= maxD; d++ {
		rng := rand.New(rand.NewSource(seed + int64(d)))
		pts := dataset.UniformVectors(rng, n, d)
		db, err := distperm.NewDB(distperm.L2, pts)
		if err != nil {
			panic(err)
		}
		built, err := distperm.Build(db, distperm.Spec{Index: "distperm", K: k, Seed: seed})
		if err != nil {
			panic(err)
		}
		idx := built.(*distperm.PermIndex)
		fileBytes, err := distperm.WriteIndex(io.Discard, idx)
		if err != nil {
			panic(err)
		}

		rawBits := int64(n) * int64(k) * 64 // []int64 per point
		fmt.Printf("%3d %10d | %*d %*d %*d %*d | %9d %12.3f\n",
			d, idx.DistinctPermutations(),
			width, rawBits, width, idx.NaiveIndexBits(), width, idx.TableIndexBits(),
			width, fileBytes,
			counting.EuclideanCount64(d, k),
			counting.InformationRatio(d, k))
	}
	fmt.Println("\nthe table encoding tracks lg(distinct) per point: a multiple smaller for")
	fmt.Println("small d, and losing to plain packing once d -> k-1 makes most permutations")
	fmt.Println("realisable (the table itself then dominates) — the paper's §4 crossover.")
	fmt.Println("the serialized file carries the table encoding plus a fixed header, so")
	fmt.Println("file bytes ≈ table bits / 8: Corollary 8's improvement, on disk.")
}
