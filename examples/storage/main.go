// Storage: the paper's Corollary 8 claim, realised in actual bits. Builds
// a permutation index over databases of increasing dimensionality and
// compares three concrete encodings of the same permutation sequence:
//
//   - raw ints (what a naive implementation stores),
//   - bit-packed Lehmer ranks at ⌈lg k!⌉ bits each (the unrestricted-
//     permutation lower bound, O(k log k) per point), and
//   - the shared-table encoding at ⌈lg #distinct⌉ bits per point (the
//     paper's improvement: Θ(d log k) per point in d-dimensional Euclidean
//     space, because only N(d,k) ≪ k! permutations can occur).
//
// Low-dimensional data compresses dramatically under the table encoding;
// as d grows toward k−1 the advantage vanishes — exactly the paper's story.
package main

import (
	"fmt"
	"math/rand"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/perm"
)

const (
	n     = 100_000
	k     = 10
	seed  = 11
	maxD  = 8
	width = 12
)

func main() {
	fmt.Printf("n = %d points, k = %d sites, Euclidean metric\n\n", n, k)
	fmt.Printf("%3s %10s | %*s %*s %*s | %9s %12s\n",
		"d", "distinct", width, "raw bits", width, "packed bits", width, "table bits",
		"N(d,k)", "lg N / lg k!")
	for d := 1; d <= maxD; d++ {
		rng := rand.New(rand.NewSource(seed + int64(d)))
		pts := dataset.UniformVectors(rng, n, d)
		sites := pts[:k]
		pm := core.NewPermuter(metric.L2{}, sites)

		packed := perm.NewPackedArray(k)
		table := perm.NewTableArray(k)
		buf := make(perm.Permutation, k)
		for _, y := range pts {
			pm.PermutationInto(y, buf)
			packed.Append(buf)
			table.Append(buf)
		}
		rawBits := int64(n) * int64(k) * 64 // []int64 per point
		fmt.Printf("%3d %10d | %*d %*d %*d | %9d %12.3f\n",
			d, table.Distinct(),
			width, rawBits, width, packed.SizeBits(), width, table.SizeBits(),
			counting.EuclideanCount64(d, k),
			counting.InformationRatio(d, k))
	}
	fmt.Println("\nthe table encoding tracks lg(distinct) per point: a multiple smaller for")
	fmt.Println("small d, and losing to plain packing once d -> k-1 makes most permutations")
	fmt.Println("realisable (the table itself then dominates) — the paper's §4 crossover.")
}
