// Quickstart: compute distance permutations, count how many distinct ones a
// database realises, and compare with the paper's theoretical maxima.
package main

import (
	"fmt"
	"math/rand"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
)

func main() {
	const (
		dims  = 2
		k     = 8
		nPts  = 50_000
		seed  = 42
		showN = 5
	)
	rng := rand.New(rand.NewSource(seed))

	// A database of uniform points in the unit square under the Euclidean
	// metric, with k of them chosen as reference sites.
	db := dataset.UniformDataset(rng, nPts, dims, metric.L2{})
	sites := db.ChooseSites(rng, k)

	// The distance permutation of a point names its closest site, second
	// closest, and so on (ties broken toward the lower site index).
	pm := core.NewPermuter(db.Metric, sites)
	fmt.Println("a few distance permutations (1-based site indices):")
	for i := 0; i < showN; i++ {
		p := pm.Permutation(db.Points[i])
		fmt.Printf("  point %v -> %s\n", db.Points[i], p)
	}

	// Count the distinct permutations the whole database realises.
	counter := core.NewCounter(db.Metric, sites)
	counter.AddAll(db.Points)
	fmt.Printf("\ndistinct permutations observed: %d\n", counter.Distinct())
	fmt.Printf("theoretical maximum N(%d,%d):    %d   (Theorem 7)\n",
		dims, k, counting.EuclideanCount64(dims, k))
	fmt.Printf("unrestricted permutations k!:   %s\n", counting.Factorial(k))

	// The storage consequence (Corollary 8): a permutation can be stored
	// in lg N(d,k) bits instead of lg k!.
	s := counting.Storage(dims, k)
	fmt.Printf("\nbits per point: %d (restricted) vs %d (naive full permutation)\n",
		s.Euclidean, s.FullPerm)
}
