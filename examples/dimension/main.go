// Dimension estimation: the paper's closing observation (§5) is that the
// number of distance permutations a database realises characterises its
// dimensionality "in a highly general way" — compare a database's counts
// against uniform Euclidean baselines and read off the equivalent dimension.
//
// This example runs that procedure on three databases of very different
// character (clustered vectors, a synthetic dictionary under edit distance,
// and gene sequences), none of which is a vector space of obvious dimension.
package main

import (
	"fmt"
	"math/rand"

	"distperm/internal/core"
	"distperm/internal/dataset"
	"distperm/internal/metric"
)

const (
	k       = 8
	baseN   = 30_000
	maxDim  = 8
	seed    = 7
	repeats = 3
)

func main() {
	rng := rand.New(rand.NewSource(seed))

	// Baselines: mean distinct-permutation counts for uniform Euclidean
	// databases of each dimension.
	fmt.Printf("uniform Euclidean baselines (n=%d, k=%d):\n", baseN, k)
	baseline := make([]float64, maxDim+1)
	for d := 1; d <= maxDim; d++ {
		total := 0
		for r := 0; r < repeats; r++ {
			db := dataset.UniformDataset(rng, baseN, d, metric.L2{})
			sites := db.ChooseSites(rng, k)
			total += core.CountDistinct(db.Metric, sites, db.Points)
		}
		baseline[d] = float64(total) / repeats
		fmt.Printf("  d=%d: %.0f permutations\n", d, baseline[d])
	}

	subjects := []*dataset.Dataset{
		{
			Name:   "clustered-6d",
			Metric: metric.L2{},
			Points: dataset.ClusteredVectors(rng, baseN, 6, 12, 0.02),
		},
		dataset.Dictionary(dataset.Languages()[1], baseN), // English analogue
		// Gene sequences are ~600 characters, so each edit distance costs
		// ~360k cell updates; 6000 points keeps the example under a minute
		// without changing its conclusion.
		dataset.GeneSequences(99, 6_000),
	}

	fmt.Println("\nsubject databases:")
	for _, db := range subjects {
		total := 0
		for r := 0; r < repeats; r++ {
			sites := db.ChooseSites(rng, k)
			total += core.CountDistinct(db.Metric, sites, db.Points)
		}
		count := float64(total) / repeats
		rho := dataset.Rho(rng, db, 10_000)
		fmt.Printf("  %-12s n=%-6d metric=%-7s rho=%6.2f  perms=%7.0f  equivalent dimension ~ %s\n",
			db.Name, db.N(), db.Metric.Name(), rho, count, equivalent(count, baseline))
	}
	fmt.Println("\n(the clustered 6-d data reads far below 6; edit-distance dictionaries")
	fmt.Println(" read like mid-dimensional uniform data; gene sequences read very low —")
	fmt.Println(" the same qualitative conclusions as the paper's Table 2 commentary.)")
}

// equivalent brackets count between baseline dimensions.
func equivalent(count float64, baseline []float64) string {
	if count <= baseline[1] {
		return "<1"
	}
	for d := 2; d < len(baseline); d++ {
		if count <= baseline[d] {
			return fmt.Sprintf("%d-%d", d-1, d)
		}
	}
	return fmt.Sprintf(">%d", len(baseline)-1)
}
