// Command tables regenerates the paper's Tables 1–3 and the Corollary 8
// storage analysis.
//
// Usage:
//
//	tables -table 1                 # exact Euclidean counts (instant)
//	tables -table 2 -scale 8        # SISAP-analogue databases, sizes /8
//	tables -table 3 -n 200000 -runs 10
//	tables -table bits -d 4 -kmax 16
//	tables -table all -paper        # everything at paper scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"distperm/internal/experiments"
)

func main() {
	var (
		table = flag.String("table", "all", `which table: "1", "2", "3", "bits", or "all"`)
		paper = flag.Bool("paper", false, "use full paper-scale workloads (slow)")
		n     = flag.Int("n", 0, "override Table 3 database size")
		runs  = flag.Int("runs", 0, "override Table 3 runs per cell")
		scale = flag.Int("scale", 0, "override Table 2 size divisor (1 = paper sizes)")
		d     = flag.Int("d", 4, "dimension for the storage analysis")
		kmax  = flag.Int("kmax", 16, "max sites for the storage analysis")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := experiments.DefaultScale()
	if *paper {
		cfg = experiments.PaperScale()
	}
	if *n > 0 {
		cfg.VectorN = *n
	}
	if *runs > 0 {
		cfg.VectorRuns = *runs
	}
	if *scale > 0 {
		cfg.SISAPScale = *scale
	}
	cfg.Seed = *seed

	w := os.Stdout
	switch *table {
	case "1":
		experiments.RunTable1().Write(w)
	case "2":
		experiments.RunTable2(cfg).Write(w)
	case "3":
		experiments.RunTable3(cfg).Write(w)
	case "bits":
		experiments.RunStorageTable(*d, *kmax).Write(w)
	case "all":
		experiments.RunTable1().Write(w)
		fmt.Fprintln(w)
		experiments.RunTable2(cfg).Write(w)
		fmt.Fprintln(w)
		experiments.RunTable3(cfg).Write(w)
		fmt.Fprintln(w)
		experiments.RunStorageTable(*d, *kmax).Write(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *table)
		os.Exit(2)
	}
}
