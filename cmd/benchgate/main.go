// Command benchgate is the CI benchmark-regression gate: it turns `go test
// -bench` text output into a comparable JSON trajectory point and fails
// when a hot-path benchmark regresses against a committed baseline.
//
// Record mode parses benchmark output (stdin or -in) into a JSON file —
// one entry per benchmark with its best ns/op (minimum across -count
// repetitions, the noise-robust choice) and best custom queries/s metric:
//
//	go test -bench . -benchtime 300ms -count 3 -run '^$' . | \
//	    benchgate -record -sha "$GITHUB_SHA" -out "BENCH_$GITHUB_SHA.json"
//
// Compare mode reads two such files and exits 1 when any benchmark present
// in both regressed by more than -max-regress (a fraction; 0.25 means a
// benchmark may be up to 25% slower, or serve up to 25% fewer queries/s,
// before the gate trips):
//
//	benchgate -baseline bench/BENCH_baseline.json -current BENCH_$GITHUB_SHA.json
//
// Benchmarks present on only one side are reported but never fail the gate,
// so adding or retiring benchmarks does not wedge CI; the committed
// baseline is refreshed by promoting a run's artifact to
// bench/BENCH_baseline.json (required after a runner-hardware change, since
// absolute timings are machine-specific). A baseline recorded with -seed
// (off-runner, bootstrapping the trajectory) is advisory: regressions are
// reported but do not fail the gate until a runner-produced baseline is
// promoted.
//
// Report mode renders a series of trajectory files — in commit order, as
// downloaded from the per-run BENCH_<sha>.json artifacts — as a markdown
// table, one row per benchmark and one column per commit, each cell showing
// ns/op with the drift against the previous commit carrying that
// benchmark. It makes perf drift visible across a whole commit range before
// any single step trips the gate:
//
//	benchgate -report BENCH_aaa.json BENCH_bbb.json BENCH_ccc.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Point is one benchmark's measurement in a trajectory file.
type Point struct {
	// NsPerOp is the best (minimum) ns/op across repetitions.
	NsPerOp float64 `json:"ns_per_op"`
	// QPS is the best (maximum) custom queries/s metric, 0 when the
	// benchmark does not report one.
	QPS float64 `json:"qps,omitempty"`
	// Runs counts the repetitions aggregated.
	Runs int `json:"runs"`
}

// File is one trajectory point: every benchmark of one commit's run.
type File struct {
	SHA string `json:"sha,omitempty"`
	// Seed marks a baseline recorded off-runner (e.g. on a developer
	// machine to bootstrap the trajectory). Absolute timings are
	// machine-specific, so compare mode reports regressions against a seed
	// baseline without failing; promoting a runner-produced artifact
	// (which record mode never stamps as seed) arms the hard gate.
	Seed       bool             `json:"seed,omitempty"`
	Benchmarks map[string]Point `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line. The -N GOMAXPROCS
// suffix is stripped so the name is stable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)
var qpsMetric = regexp.MustCompile(`([0-9.e+]+) queries/s`)

// parseBench folds benchmark output into per-name Points: minimum ns/op and
// maximum queries/s across repeated lines.
func parseBench(r io.Reader) (map[string]Point, error) {
	out := map[string]Point{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op %q: %w", m[2], err)
		}
		p := out[m[1]]
		if p.Runs == 0 || ns < p.NsPerOp {
			p.NsPerOp = ns
		}
		if q := qpsMetric.FindStringSubmatch(m[3]); q != nil {
			qps, err := strconv.ParseFloat(q[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad queries/s %q: %w", q[1], err)
			}
			if qps > p.QPS {
				p.QPS = qps
			}
		}
		p.Runs++
		out[m[1]] = p
	}
	return out, sc.Err()
}

// regression describes one gate violation.
type regression struct {
	name   string
	metric string
	base   float64
	cur    float64
	frac   float64 // how much worse, as a fraction of base
}

// compare gates current against baseline: a benchmark regresses when its
// ns/op grew, or its queries/s shrank, by more than maxRegress. Only
// benchmarks present in both files are gated; the names present on one
// side only are returned for reporting.
func compare(baseline, current map[string]Point, maxRegress float64) (regs []regression, onlyBase, onlyCur []string) {
	for name, b := range baseline {
		c, ok := current[name]
		if !ok {
			onlyBase = append(onlyBase, name)
			continue
		}
		if b.NsPerOp > 0 {
			if frac := c.NsPerOp/b.NsPerOp - 1; frac > maxRegress {
				regs = append(regs, regression{name, "ns/op", b.NsPerOp, c.NsPerOp, frac})
			}
		}
		if b.QPS > 0 && c.QPS > 0 {
			if frac := 1 - c.QPS/b.QPS; frac > maxRegress {
				regs = append(regs, regression{name, "queries/s", b.QPS, c.QPS, frac})
			}
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			onlyCur = append(onlyCur, name)
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].name < regs[j].name })
	sort.Strings(onlyBase)
	sort.Strings(onlyCur)
	return regs, onlyBase, onlyCur
}

// columnLabel names a trajectory file in the report header: the short SHA
// when the file carries one (with a seed marker when applicable), else the
// file's base name.
func columnLabel(path string, f File) string {
	label := f.SHA
	if label == "" {
		label = filepath.Base(path)
	}
	if len(label) > 12 {
		label = label[:12]
	}
	if f.Seed {
		label += " (seed)"
	}
	return label
}

// writeReport renders the trajectory files (in the given order) as a
// markdown table: benchmark × commit, ns/op with percentage drift against
// the previous commit that has the benchmark.
func writeReport(w io.Writer, paths []string, files []File) error {
	names := map[string]bool{}
	for _, f := range files {
		for name := range f.Benchmarks {
			names[name] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "| benchmark |")
	for i, f := range files {
		fmt.Fprintf(w, " %s |", columnLabel(paths[i], f))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|")
	for range files {
		fmt.Fprintf(w, "---:|")
	}
	fmt.Fprintln(w)
	for _, name := range sorted {
		fmt.Fprintf(w, "| %s |", name)
		prev := 0.0 // last ns/op seen for this benchmark, 0 = none yet
		for _, f := range files {
			p, ok := f.Benchmarks[name]
			switch {
			case !ok:
				fmt.Fprintf(w, " — |")
			case prev == 0:
				fmt.Fprintf(w, " %.4g ns/op |", p.NsPerOp)
			default:
				fmt.Fprintf(w, " %.4g ns/op (%+.1f%%) |", p.NsPerOp, (p.NsPerOp/prev-1)*100)
			}
			if ok {
				prev = p.NsPerOp
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func readFile(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return f, nil
}

func main() {
	var (
		record     = flag.Bool("record", false, "parse `go test -bench` output into a trajectory JSON")
		in         = flag.String("in", "", "record: read benchmark output from this file instead of stdin")
		out        = flag.String("out", "", "record: write the JSON here (default stdout)")
		sha        = flag.String("sha", "", "record: commit SHA to stamp the file with")
		seed       = flag.Bool("seed", false, "record: mark the file as an off-runner seed baseline (compare reports against it without failing)")
		baseline   = flag.String("baseline", "", "compare: the committed baseline JSON")
		current    = flag.String("current", "", "compare: the fresh run's JSON")
		maxRegress = flag.Float64("max-regress", 0.25, "compare: fail when a benchmark is more than this fraction worse")
		report     = flag.Bool("report", false, "render the trajectory files given as arguments (in commit order) as a markdown drift table")
	)
	flag.Parse()
	var reportFiles []string
	if *report {
		reportFiles = flag.Args()
	}
	if err := run(*record, *in, *out, *sha, *seed, *baseline, *current, *maxRegress, reportFiles, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(record bool, in, out, sha string, seed bool, baseline, current string, maxRegress float64, report []string, w io.Writer) error {
	switch {
	case len(report) > 0:
		files := make([]File, len(report))
		for i, path := range report {
			f, err := readFile(path)
			if err != nil {
				return err
			}
			files[i] = f
		}
		return writeReport(w, report, files)
	case record:
		src := io.Reader(os.Stdin)
		if in != "" {
			f, err := os.Open(in)
			if err != nil {
				return err
			}
			defer f.Close()
			src = f
		}
		points, err := parseBench(src)
		if err != nil {
			return err
		}
		if len(points) == 0 {
			return fmt.Errorf("benchgate: no benchmark lines in input")
		}
		raw, err := json.MarshalIndent(File{SHA: sha, Seed: seed, Benchmarks: points}, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if out == "" {
			_, err := w.Write(raw)
			return err
		}
		return os.WriteFile(out, raw, 0o644)
	case baseline != "" && current != "":
		base, err := readFile(baseline)
		if err != nil {
			return err
		}
		cur, err := readFile(current)
		if err != nil {
			return err
		}
		regs, onlyBase, onlyCur := compare(base.Benchmarks, cur.Benchmarks, maxRegress)
		for _, name := range onlyBase {
			fmt.Fprintf(w, "note: %s is in the baseline only (retired?)\n", name)
		}
		for _, name := range onlyCur {
			fmt.Fprintf(w, "note: %s is new (not in the baseline); promote the artifact to gate it\n", name)
		}
		gated := 0
		for name := range cur.Benchmarks {
			if _, ok := base.Benchmarks[name]; ok {
				gated++
			}
		}
		if len(regs) == 0 {
			fmt.Fprintf(w, "benchgate: %d benchmarks within %.0f%% of baseline %s\n",
				gated, maxRegress*100, base.SHA)
			return nil
		}
		for _, r := range regs {
			fmt.Fprintf(w, "REGRESSION: %s %s %.4g → %.4g (%.1f%% worse, limit %.0f%%)\n",
				r.name, r.metric, r.base, r.cur, r.frac*100, maxRegress*100)
		}
		if base.Seed {
			fmt.Fprintf(w, "benchgate: baseline %s is an off-runner seed — regressions reported, not fatal; promote a run's artifact to bench/BENCH_baseline.json to arm the gate\n", base.SHA)
			return nil
		}
		return fmt.Errorf("benchgate: %d regression(s) beyond %.0f%% vs baseline %s",
			len(regs), maxRegress*100, base.SHA)
	default:
		return fmt.Errorf("benchgate: use -record, -baseline with -current, or -report with trajectory files (see package doc)")
	}
}
