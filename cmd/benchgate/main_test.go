package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: distperm
BenchmarkKNNLinear-8   	   35870	     33099 ns/op
BenchmarkKNNLinear-8   	   36012	     32950 ns/op
BenchmarkKNNLinear-8   	   35011	     34001 ns/op
BenchmarkEngineThroughput/workers=4-8  	    2623	    456087 ns/op	    561623 queries/s
BenchmarkEngineThroughput/workers=4-8  	    2590	    460100 ns/op	    555002 queries/s
BenchmarkPermutationL2-8	 4524525	       265.1 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	distperm	12.3s
`

func TestParseBench(t *testing.T) {
	points, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	lin, ok := points["BenchmarkKNNLinear"]
	if !ok || lin.Runs != 3 || lin.NsPerOp != 32950 {
		t.Errorf("KNNLinear = %+v (want min of 3 runs, 32950 ns/op)", lin)
	}
	eng, ok := points["BenchmarkEngineThroughput/workers=4"]
	if !ok || eng.Runs != 2 || eng.NsPerOp != 456087 || eng.QPS != 561623 {
		t.Errorf("EngineThroughput = %+v", eng)
	}
	perm, ok := points["BenchmarkPermutationL2"]
	if !ok || perm.NsPerOp != 265.1 || perm.QPS != 0 {
		t.Errorf("PermutationL2 = %+v", perm)
	}
	if empty, err := parseBench(strings.NewReader("no benchmarks here")); err != nil || len(empty) != 0 {
		t.Errorf("garbage input: %v, %v", empty, err)
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]Point{
		"A": {NsPerOp: 1000, Runs: 3},
		"B": {NsPerOp: 500, QPS: 10000, Runs: 3},
		"C": {NsPerOp: 200, Runs: 3}, // retired
	}
	cur := map[string]Point{
		"A": {NsPerOp: 1200, Runs: 3},           // 20% slower: within a 25% gate
		"B": {NsPerOp: 500, QPS: 7000, Runs: 3}, // 30% fewer queries/s: regression
		"D": {NsPerOp: 50, Runs: 3},             // new
	}
	regs, onlyBase, onlyCur := compare(base, cur, 0.25)
	if len(regs) != 1 || regs[0].name != "B" || regs[0].metric != "queries/s" {
		t.Fatalf("regs = %+v, want exactly B on queries/s", regs)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "C" || len(onlyCur) != 1 || onlyCur[0] != "D" {
		t.Errorf("membership notes: %v, %v", onlyBase, onlyCur)
	}
	// A tighter gate catches the ns/op drift too.
	regs, _, _ = compare(base, cur, 0.1)
	if len(regs) != 2 {
		t.Errorf("10%% gate: %+v, want A and B", regs)
	}
	// Identical runs never regress.
	if regs, _, _ := compare(base, base, 0.25); len(regs) != 0 {
		t.Errorf("self-compare regressed: %+v", regs)
	}
}

// TestEndToEndGate drives record and compare through run(), including the
// injected-slowdown failure the CI gate exists for.
func TestEndToEndGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	in := write("bench.txt", sampleOutput)
	basePath := filepath.Join(dir, "base.json")
	var sink strings.Builder
	if err := run(true, in, basePath, "abc123", false, "", "", 0.25, nil, &sink); err != nil {
		t.Fatal(err)
	}
	// Same numbers against themselves: the gate passes.
	if err := run(false, "", "", "", false, basePath, basePath, 0.25, nil, &sink); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	// Inject a slowdown: every ns/op figure 10× worse must trip the gate.
	slow := strings.NewReplacer("33099", "330990", "32950", "329500", "34001", "340010",
		"456087", "4560870", "460100", "4601000", "265.1", "2651").Replace(sampleOutput)
	slowIn := write("slow.txt", slow)
	curPath := filepath.Join(dir, "cur.json")
	if err := run(true, slowIn, curPath, "def456", false, "", "", 0.25, nil, &sink); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	err := run(false, "", "", "", false, basePath, curPath, 0.25, nil, &sink)
	if err == nil {
		t.Fatalf("injected slowdown passed the gate:\n%s", sink.String())
	}
	if !strings.Contains(sink.String(), "REGRESSION: BenchmarkKNNLinear") {
		t.Errorf("regression report missing:\n%s", sink.String())
	}
	// A seed-stamped baseline reports the same regressions without
	// failing: absolute timings from another machine must not wedge CI
	// until a runner-produced artifact is promoted.
	seedPath := filepath.Join(dir, "seedbase.json")
	if err := run(true, in, seedPath, "abc123", true, "", "", 0.25, nil, &sink); err != nil {
		t.Fatal(err)
	}
	sink.Reset()
	if err := run(false, "", "", "", false, seedPath, curPath, 0.25, nil, &sink); err != nil {
		t.Fatalf("seed baseline must be advisory: %v", err)
	}
	if !strings.Contains(sink.String(), "REGRESSION: BenchmarkKNNLinear") ||
		!strings.Contains(sink.String(), "not fatal") {
		t.Errorf("seed-baseline report wrong:\n%s", sink.String())
	}

	// Missing-benchmark edge: an empty input errors in record mode.
	if err := run(true, write("empty.txt", "PASS\n"), "", "", false, "", "", 0.25, nil, &sink); err == nil {
		t.Error("empty benchmark output should error")
	}
	// No mode selected is a usage error.
	if err := run(false, "", "", "", false, "", "", 0.25, nil, &sink); err == nil {
		t.Error("no mode should error")
	}
}

// TestReportTable renders a three-commit trajectory as the markdown drift
// table the ROADMAP's bench-trajectory item asks for.
func TestReportTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("BENCH_a.json", `{"sha":"aaaaaaaaaaaaaaaa","benchmarks":{
		"BenchmarkX":{"ns_per_op":1000,"runs":3},
		"BenchmarkRetired":{"ns_per_op":50,"runs":3}}}`)
	b := write("BENCH_b.json", `{"sha":"bbbbbbbbbbbbbbbb","seed":true,"benchmarks":{
		"BenchmarkX":{"ns_per_op":1100,"runs":3},
		"BenchmarkNew":{"ns_per_op":200,"runs":3},
		"BenchmarkBatchedKernel/data=uniform/batch=64":{"ns_per_op":16000000,"runs":3}}}`)
	c := write("BENCH_c.json", `{"benchmarks":{
		"BenchmarkX":{"ns_per_op":880,"runs":3},
		"BenchmarkNew":{"ns_per_op":200,"runs":3},
		"BenchmarkBatchedKernel/data=uniform/batch=64":{"ns_per_op":12000000,"runs":3}}}`)

	var sink strings.Builder
	if err := run(false, "", "", "", false, "", "", 0.25, []string{a, b, c}, &sink); err != nil {
		t.Fatal(err)
	}
	got := sink.String()
	for _, want := range []string{
		// Columns: short SHA, seed marker, basename fallback. First
		// appearance of a benchmark has no drift; later cells show % vs the
		// previous commit carrying it, and absences render as a dash.
		"| benchmark | aaaaaaaaaaaa | bbbbbbbbbbbb (seed) | BENCH_c.json |",
		"| BenchmarkX | 1000 ns/op | 1100 ns/op (+10.0%) | 880 ns/op (-20.0%) |",
		"| BenchmarkRetired | 50 ns/op | — | — |",
		"| BenchmarkNew | — | 200 ns/op | 200 ns/op (+0.0%) |",
		// Sub-benchmark paths (slashes, key=value components) flow through
		// the drift cells untouched.
		"| BenchmarkBatchedKernel/data=uniform/batch=64 | — | 1.6e+07 ns/op | 1.2e+07 ns/op (-25.0%) |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// An unreadable file is an error, not a blank column.
	if err := run(false, "", "", "", false, "", "", 0.25, []string{filepath.Join(dir, "missing.json")}, &sink); err == nil {
		t.Error("missing trajectory file should error")
	}
}
