package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distperm/internal/dataset"
)

func TestRunServe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, err := dataset.Load(rng, "uniform", "", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"distperm", "linear", "vptree"} {
		var out strings.Builder
		cfg := serveConfig{Index: kind, K: 6, KNN: 2, Queries: 50, Workers: 4}
		if err := runServe(&out, ds, rng, cfg); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got := out.String()
		for _, want := range []string{"index=" + kind, "50 2-NN queries", "4 workers", "distance evals"} {
			if !strings.Contains(got, want) {
				t.Errorf("%s: output missing %q:\n%s", kind, want, got)
			}
		}
	}
	// Bad spec surfaces as an error, not a panic.
	var out strings.Builder
	if err := runServe(&out, ds, rng, serveConfig{Index: "bogus", K: 4, KNN: 1, Queries: 1}); err == nil {
		t.Error("unknown index kind should error")
	}
}

func TestRunServeSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds, err := dataset.Load(rng, "uniform", "", 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, partition := range []string{"roundrobin", "hash"} {
		var out strings.Builder
		cfg := serveConfig{
			Index: "distperm", K: 6, KNN: 2, Queries: 40, Workers: 2,
			Shards: 4, Partition: partition,
		}
		if err := runServe(&out, ds, rng, cfg); err != nil {
			t.Fatalf("%s: %v", partition, err)
		}
		got := out.String()
		for _, want := range []string{
			"index=sharded[distperm×4]", partition + " partition",
			"4 shards × 2 workers",
			"shard 0:", "shard 3:", "sub-queries",
			"aggregate: distance evals",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("%s: output missing %q:\n%s", partition, want, got)
			}
		}
	}
	// A partitioner typo is an error, not a panic.
	var out strings.Builder
	cfg := serveConfig{Index: "linear", KNN: 1, Queries: 1, Shards: 2, Partition: "modulo"}
	if err := runServe(&out, ds, rng, cfg); err == nil {
		t.Error("unknown partitioner should error")
	}
	// More shards than points is an error.
	cfg = serveConfig{Index: "linear", KNN: 1, Queries: 1, Shards: 601, Partition: "roundrobin"}
	if err := runServe(&out, ds, rng, cfg); err == nil {
		t.Error("shards > n should error")
	}
}

// TestBuildDataset: the flag-resolution wrapper routes -file to the shared
// reader and -gen to the shared generators (both covered in depth by
// internal/dataset's own tests).
func TestBuildDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, err := dataset.Load(rng, "uniform", "", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 50 {
		t.Errorf("n = %d, want 50", ds.N())
	}
	if _, err := dataset.Load(rng, "bogus", "", 10, 2); err == nil {
		t.Error("unknown generator should error")
	}
	path := filepath.Join(t.TempDir(), "points.txt")
	if err := os.WriteFile(path, []byte("0.1 0.2\n0.3 0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err = dataset.Load(rng, "uniform", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Errorf("file dataset n = %d, want 2", ds.N())
	}
}
