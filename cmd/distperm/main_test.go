package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunServe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, err := buildDataset(rng, "uniform", "", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"distperm", "linear", "vptree"} {
		var out strings.Builder
		cfg := serveConfig{Index: kind, K: 6, KNN: 2, Queries: 50, Workers: 4}
		if err := runServe(&out, ds, rng, cfg); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got := out.String()
		for _, want := range []string{"index=" + kind, "50 2-NN queries", "4 workers", "distance evals"} {
			if !strings.Contains(got, want) {
				t.Errorf("%s: output missing %q:\n%s", kind, want, got)
			}
		}
	}
	// Bad spec surfaces as an error, not a panic.
	var out strings.Builder
	if err := runServe(&out, ds, rng, serveConfig{Index: "bogus", K: 4, KNN: 1, Queries: 1}); err == nil {
		t.Error("unknown index kind should error")
	}
}

func TestRunServeSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds, err := buildDataset(rng, "uniform", "", 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, partition := range []string{"roundrobin", "hash"} {
		var out strings.Builder
		cfg := serveConfig{
			Index: "distperm", K: 6, KNN: 2, Queries: 40, Workers: 2,
			Shards: 4, Partition: partition,
		}
		if err := runServe(&out, ds, rng, cfg); err != nil {
			t.Fatalf("%s: %v", partition, err)
		}
		got := out.String()
		for _, want := range []string{
			"index=sharded[distperm×4]", partition + " partition",
			"4 shards × 2 workers",
			"shard 0:", "shard 3:", "sub-queries",
			"aggregate: distance evals",
		} {
			if !strings.Contains(got, want) {
				t.Errorf("%s: output missing %q:\n%s", partition, want, got)
			}
		}
	}
	// A partitioner typo is an error, not a panic.
	var out strings.Builder
	cfg := serveConfig{Index: "linear", KNN: 1, Queries: 1, Shards: 2, Partition: "modulo"}
	if err := runServe(&out, ds, rng, cfg); err == nil {
		t.Error("unknown partitioner should error")
	}
	// More shards than points is an error.
	cfg = serveConfig{Index: "linear", KNN: 1, Queries: 1, Shards: 601, Partition: "roundrobin"}
	if err := runServe(&out, ds, rng, cfg); err == nil {
		t.Error("shards > n should error")
	}
}

func TestMetricByName(t *testing.T) {
	for name, want := range map[string]string{
		"L1": "L1", "L2": "L2", "Linf": "Linf",
		"edit": "edit", "prefix": "prefix", "angular": "angular",
	} {
		m, err := metricByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != want {
			t.Errorf("%s -> %s", name, m.Name())
		}
	}
	if _, err := metricByName("nope"); err == nil {
		t.Error("unknown metric should error")
	}
}

func TestBuildDatasetGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []string{
		"uniform", "gauss", "clustered", "english", "Dutch", "listeria",
		"long", "short", "colors", "nasa",
	} {
		ds, err := buildDataset(rng, gen, "", 200, 3)
		if err != nil {
			t.Fatalf("%s: %v", gen, err)
		}
		if ds.N() == 0 {
			t.Errorf("%s: empty dataset", gen)
		}
	}
	if _, err := buildDataset(rng, "bogus", "", 10, 2); err == nil {
		t.Error("unknown generator should error")
	}
}

func TestReadVectorFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "points.txt")
	content := "0.1 0.2 0.3\n0.4 0.5 0.6\n\n0.7 0.8 0.9\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := readVectorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 {
		t.Fatalf("n = %d, want 3", ds.N())
	}

	// Ragged rows must be rejected.
	bad := filepath.Join(dir, "ragged.txt")
	os.WriteFile(bad, []byte("1 2\n3\n"), 0o644)
	if _, err := readVectorFile(bad); err == nil {
		t.Error("ragged file should error")
	}
	// Non-numeric input must be rejected.
	nonNum := filepath.Join(dir, "alpha.txt")
	os.WriteFile(nonNum, []byte("a b c\n"), 0o644)
	if _, err := readVectorFile(nonNum); err == nil {
		t.Error("non-numeric file should error")
	}
	// Empty file must be rejected.
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("\n\n"), 0o644)
	if _, err := readVectorFile(empty); err == nil {
		t.Error("empty file should error")
	}
	// Missing file must be rejected.
	if _, err := readVectorFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
}
