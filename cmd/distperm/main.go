// Command distperm counts the distinct distance permutations of a dataset,
// the measurement at the heart of the paper's experiments. It mirrors the
// author's SISAP-library "build-distperm-*" programs: it can emit the raw
// permutations in ASCII (one per line, 1-based, the format those programs
// wrote for `sort | uniq | wc` pipelines) or just the count, against either
// a generated dataset or vectors read from a file.
//
// With -serve it instead runs the public query-engine layer (pkg/distperm):
// it builds the requested index over the dataset and answers a batch of kNN
// queries on a goroutine worker pool, reporting throughput and the
// engine-level cost counters (distance evaluations, latency percentiles).
// With -shards S (S > 1) the database is partitioned (any registered
// -partition strategy) and served scatter-gather, one worker pool per
// shard, reporting per-shard and aggregate stats. Adding -addr hands the
// built index to the network serving subsystem (pkg/dpserver) instead: the
// same HTTP daemon as distpermd, which is the richer entry point for
// serving (index loading, coalescer/cache tuning, load generation).
//
// Usage:
//
//	distperm -gen uniform -d 4 -n 100000 -metric L2 -k 8
//	distperm -gen english -n 5000 -k 6 -emit      # print permutations
//	distperm -file points.txt -metric L1 -k 5     # whitespace-separated vectors
//	distperm -gen uniform -d 3 -n 100000 -metric L1 -k 5 -bounds
//	distperm -serve -gen uniform -d 6 -n 20000 -k 12 -index distperm -queries 5000 -workers 8
//	distperm -serve -gen uniform -d 6 -n 20000 -k 12 -queries 5000 -shards 4 -partition hash
//	distperm -serve -gen uniform -d 6 -n 20000 -k 12 -addr :7411   # HTTP via pkg/dpserver
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distperm/internal/core"
	"distperm/internal/counting"
	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/perm"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
)

func main() {
	var (
		gen    = flag.String("gen", "uniform", "generator: uniform, gauss, clustered, dutch, english, french, german, italian, norwegian, spanish, listeria, long, short, colors, nasa")
		file   = flag.String("file", "", "read whitespace-separated vectors from a file instead of generating")
		n      = flag.Int("n", 100_000, "points to generate")
		d      = flag.Int("d", 4, "dimensions (vector generators)")
		k      = flag.Int("k", 8, "number of sites")
		mname  = flag.String("metric", "", "override metric: L1, L2, Linf, edit, prefix, angular (generators pick a default)")
		seed   = flag.Int64("seed", 1, "random seed")
		emit   = flag.Bool("emit", false, "write every point's permutation to stdout (1-based)")
		bounds = flag.Bool("bounds", false, "also print the applicable theoretical bounds")

		serve     = flag.Bool("serve", false, "batch-query mode: build an index and serve kNN traffic on a worker pool")
		index     = flag.String("index", "distperm", "index kind for -serve: "+strings.Join(distperm.Kinds(), ", "))
		queries   = flag.Int("queries", 1_000, "queries to serve in -serve mode")
		knn       = flag.Int("knn", 1, "neighbours per query in -serve mode")
		workers   = flag.Int("workers", 0, "worker goroutines per shard in -serve mode (0 = NumCPU)")
		shards    = flag.Int("shards", 1, "partition the database across this many scatter-gather shards in -serve mode")
		partition = flag.String("partition", "roundrobin", "shard placement strategy for -shards > 1: "+strings.Join(distperm.Partitioners(), ", "))
		addr      = flag.String("addr", "", "with -serve: serve HTTP on this address via pkg/dpserver instead of a one-shot batch")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	ds, err := dataset.Load(rng, *gen, *file, *n, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *mname != "" {
		m, err := metric.ByName(*mname)
		if err == nil {
			// e.g. -metric edit over a vector dataset: a clean error here,
			// not a panic inside the counter or an engine worker.
			err = metric.Probe(m, ds.Points[0])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ds.Metric = m
	}

	if *serve {
		cfg := serveConfig{
			Index: *index, K: *k, KNN: *knn,
			Queries: *queries, Workers: *workers,
			Shards: *shards, Partition: *partition,
			Addr: *addr,
		}
		run := runServe
		if cfg.Addr != "" {
			run = runServeHTTP
		}
		if err := run(os.Stdout, ds, rng, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	sites := ds.ChooseSites(rng, *k)
	if *emit {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		pm := core.NewPermuter(ds.Metric, sites)
		buf := make(perm.Permutation, *k)
		for _, pt := range ds.Points {
			pm.PermutationInto(pt, buf)
			fmt.Fprintln(w, buf.String())
		}
		return
	}

	count := core.CountDistinct(ds.Metric, sites, ds.Points)
	fmt.Printf("%s: n=%d metric=%s k=%d distinct permutations=%d (k!=%s)\n",
		ds.Name, ds.N(), ds.Metric.Name(), *k, count, counting.Factorial(*k))
	if *bounds {
		fmt.Printf("  Euclidean max N(%d,%d) = %s\n", *d, *k, counting.EuclideanCount(*d, *k))
		fmt.Printf("  tree-metric bound C(k,2)+1 = %s\n", counting.TreeBound(*k))
		if *d <= 6 {
			fmt.Printf("  Theorem 9 L1 bound = %s\n", counting.L1Bound(*d, *k))
			fmt.Printf("  Theorem 9 Linf bound = %s\n", counting.LInfBound(*d, *k))
		}
	}
}

// serveConfig collects the -serve mode parameters.
type serveConfig struct {
	Index     string
	K         int
	KNN       int
	Queries   int
	Workers   int
	Shards    int
	Partition string
	Addr      string
}

// buildIndex builds the configured index — sharded through the partitioner
// registry when Shards > 1, plain otherwise — over db.
func buildIndex(db *distperm.DB, rng *rand.Rand, cfg serveConfig) (distperm.Index, error) {
	spec := distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()}
	if cfg.Shards > 1 {
		p, err := distperm.PartitionerByName(cfg.Partition)
		if err != nil {
			return nil, err
		}
		return distperm.BuildSharded(db, spec, cfg.Shards, p)
	}
	return distperm.Build(db, spec)
}

// runServeHTTP is the -addr arm of -serve: it hands the built index to the
// network serving subsystem (pkg/dpserver) with its default coalescer and
// cache, serving until SIGINT/SIGTERM, then draining gracefully. distpermd
// is the full-featured daemon; this arm exists so the paper-experiment CLI
// can expose any dataset it can build over HTTP in one step.
func runServeHTTP(w io.Writer, ds *dataset.Dataset, rng *rand.Rand, cfg serveConfig) error {
	db, err := distperm.NewDB(ds.Metric, ds.Points)
	if err != nil {
		return err
	}
	idx, err := buildIndex(db, rng, cfg)
	if err != nil {
		return err
	}
	srv, err := dpserver.NewFromIndex(db, idx, cfg.Workers, dpserver.Config{
		BatchMax: 64, BatchWait: 2 * time.Millisecond, CacheSize: 4096,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	info := srv.Info()
	fmt.Fprintf(w, "%s: serving index=%s (%d bits, %d shards) over HTTP on %s\n",
		ds.Name, info.Kind, info.Bits, info.Shards, ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Serve(ctx, ln)
}

// runServe builds the requested index through the public Build registry and
// serves a batch of kNN queries (sampled from the dataset) on the engine's
// worker pool, printing throughput and cost counters to w. With Shards > 1
// the database is partitioned and served scatter-gather — one worker pool
// per shard — and both per-shard and aggregate stats are reported.
func runServe(w io.Writer, ds *dataset.Dataset, rng *rand.Rand, cfg serveConfig) error {
	db, err := distperm.NewDB(ds.Metric, ds.Points)
	if err != nil {
		return err
	}
	if cfg.Shards > 1 {
		return runServeSharded(w, ds, db, rng, cfg)
	}
	buildStart := time.Now()
	idx, err := distperm.Build(db, distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()})
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	e, err := distperm.NewEngine(db, idx, cfg.Workers)
	if err != nil {
		return err
	}
	defer e.Close()

	start := time.Now()
	if _, err := e.KNNBatch(ds.Sample(rng, cfg.Queries), cfg.KNN); err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := e.Stats()

	fmt.Fprintf(w, "%s: n=%d metric=%s index=%s (%d bits), built in %v\n",
		ds.Name, ds.N(), ds.Metric.Name(), idx.Name(), idx.IndexBits(), buildTime.Round(time.Millisecond))
	fmt.Fprintf(w, "served %d %d-NN queries on %d workers in %v (%.0f queries/s)\n",
		st.Queries, cfg.KNN, e.Workers(), elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds())
	fmt.Fprintf(w, "distance evals: %d total, %.1f mean/query; latency p50 %v, p99 %v\n",
		st.DistanceEvals, st.MeanEvals, st.P50, st.P99)
	return nil
}

// runServeSharded is the Shards > 1 arm of runServe: partition, build one
// index per shard, scatter-gather the same query batch, report per-shard and
// aggregate counters.
func runServeSharded(w io.Writer, ds *dataset.Dataset, db *distperm.DB, rng *rand.Rand, cfg serveConfig) error {
	p, err := distperm.PartitionerByName(cfg.Partition)
	if err != nil {
		return err
	}
	buildStart := time.Now()
	sx, err := distperm.BuildSharded(db,
		distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()}, cfg.Shards, p)
	if err != nil {
		return err
	}
	buildTime := time.Since(buildStart)

	se, err := distperm.NewShardedEngine(sx, cfg.Workers)
	if err != nil {
		return err
	}
	defer se.Close()

	start := time.Now()
	if _, err := se.KNNBatch(ds.Sample(rng, cfg.Queries), cfg.KNN); err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(w, "%s: n=%d metric=%s index=%s[%s×%d] (%d bits), %s partition, built in %v\n",
		ds.Name, ds.N(), ds.Metric.Name(), sx.Name(), cfg.Index, sx.NumShards(),
		sx.IndexBits(), p.Name(), buildTime.Round(time.Millisecond))
	fmt.Fprintf(w, "served %d %d-NN queries on %d shards × %d workers in %v (%.0f queries/s)\n",
		cfg.Queries, cfg.KNN, se.Shards(), se.Workers()/se.Shards(),
		elapsed.Round(time.Millisecond), float64(cfg.Queries)/elapsed.Seconds())
	for s, st := range se.ShardStats() {
		fmt.Fprintf(w, "  shard %d: n=%d, %d sub-queries, %d evals (%.1f mean), p50 %v, p99 %v\n",
			s, sx.ShardDB(s).N(), st.Queries, st.DistanceEvals, st.MeanEvals, st.P50, st.P99)
	}
	agg := se.Stats()
	fmt.Fprintf(w, "aggregate: distance evals %d total, %.1f mean/sub-query; latency p50 %v, p99 %v\n",
		agg.DistanceEvals, agg.MeanEvals, agg.P50, agg.P99)
	return nil
}
