// Command distpermd is the network serving daemon over the distance-
// permutation index family: it loads a dataset (generated or from a file)
// plus an index — built on startup or read from a DPERMIDX container of any
// codec kind, including "sharded" — and serves JSON kNN/range traffic on a
// worker-pool engine behind a result cache and a micro-batching coalescer
// (pkg/dpserver). The listen socket binds before any loading starts;
// /healthz answers 200 (alive) from that moment, while /readyz and every
// other endpoint answer 503 {"status":"loading"} until the store is ready
// — the explicit not-ready → ready transition restart orchestration keys
// on. GET /metrics serves Prometheus text exposition, and -ops-addr adds a
// private listener with /metrics, the health probes, and net/http/pprof.
// Shutdown on SIGINT/SIGTERM is graceful:
// in-flight requests drain and pending coalescer batches flush before the
// engine closes and any mapped container is unmapped.
//
// With -freeze it writes the frozen container form of a distance-permutation
// index — position-independent, checksummed, mmap-ready sections — and
// exits. A daemon restarted with -mmap -load over such a container maps it
// read-only in O(1) instead of stream-decoding it; when the container
// embeds its points (named metric over plain vectors) the daemon needs no
// dataset flags at all.
//
// With -loadgen it is the matching load driver instead: it fires
// configurable QPS/concurrency at a running daemon through the Go client
// and reports achieved throughput and latency percentiles — the repo's
// qps-vs-workers and qps-vs-shards benchmark story extended over the wire.
//
// With -rebuild-threshold N the daemon serves the live write path too:
// POST /v1/insert and /v1/delete mutate the logical point set (delta buffer
// + tombstones, stable global IDs), and once N writes are pending a
// background rebuild folds them into a fresh index, swapped in atomically
// under traffic.
//
// Usage:
//
//	distpermd -gen uniform -n 20000 -d 6 -index distperm -k 12 -addr :7411
//	distpermd -gen uniform -n 20000 -d 6 -shards 4 -partition hash -addr :7411
//	distpermd -gen uniform -n 20000 -d 6 -rebuild-threshold 4096 -addr :7411
//	distpermd -file points.txt -load index.dpermidx -addr :7411
//	distpermd -gen uniform -n 20000 -d 6 -index distperm -k 12 -freeze index.frozen
//	distpermd -mmap -load index.frozen -addr :7411
//	distpermd -loadgen -target http://localhost:7411 -gen uniform -n 1000 -d 6 \
//	    -knn 3 -qps 500 -concurrency 16 -duration 10s
//
//	curl -s localhost:7411/v1/knn -d '{"query": [0.5,0.5,0.5,0.5,0.5,0.5], "k": 3}'
//	curl -s localhost:7411/v1/knn -d '{"query": [0.5,0.5,0.5,0.5,0.5,0.5], "k": 3, "approx": true, "nprobe": 4}'
//	curl -s localhost:7411/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"distperm/internal/dataset"
	"distperm/internal/metric"
	"distperm/internal/sisap"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/dpserver/client"
	"distperm/pkg/obs"
)

func main() {
	var (
		// Dataset: what the index is over (and, for -loadgen, the query pool).
		gen   = flag.String("gen", "uniform", "generator: "+strings.Join(dataset.GeneratorNames(), ", "))
		file  = flag.String("file", "", "read whitespace-separated vectors from a file instead of generating")
		n     = flag.Int("n", 20_000, "points to generate")
		d     = flag.Int("d", 6, "dimensions (vector generators)")
		mname = flag.String("metric", "", "override metric: L1, L2, Linf, edit, prefix, angular")
		seed  = flag.Int64("seed", 1, "random seed")

		// Index: built on startup or loaded from a container.
		index     = flag.String("index", "distperm", "index kind to build: "+strings.Join(distperm.Kinds(), ", "))
		k         = flag.Int("k", 8, "pivots/sites for the built index")
		load      = flag.String("load", "", "read a DPERMIDX container (any codec kind, including sharded and mutable) instead of building")
		mmapFlag  = flag.Bool("mmap", false, "map -load as a frozen container read-only (O(1) open) instead of stream-decoding; dataset flags are only consulted when the container embeds no points")
		freeze    = flag.String("freeze", "", "write the built/loaded distperm index as a frozen (mmap-ready) container to this path and exit")
		shards    = flag.Int("shards", 1, "partition the database across this many scatter-gather shards")
		partition = flag.String("partition", "roundrobin", "shard placement strategy: "+strings.Join(distperm.Partitioners(), ", "))
		workers   = flag.Int("workers", 0, "worker goroutines per engine pool (0 = NumCPU)")
		rebuild   = flag.Int("rebuild-threshold", 0, "enable the live write path (POST /v1/insert, /v1/delete): background-rebuild the index once this many writes are pending (0 serves read-only)")
		approxEll = flag.Int("approx-prefix", 0, "rebuild the approximate-search prefix-bucket directory at this permutation-prefix length ℓ before serving (0 keeps the index default; indexes produced by later background rebuilds build the default directory lazily)")

		// Durability: crash-safe writes through a write-ahead log.
		walDir     = flag.String("wal", "", "write-ahead log directory: log every write before acknowledging it, and recover on startup (newest checkpoint + log tail replay); implies the live write path. Restart with the same dataset/index flags — without a checkpoint, replay rebuilds the base from them")
		walSync    = flag.String("wal-sync", "always", "wal durability: always (fsync before every ack), interval (background fsync), never (OS page cache only — survives kill -9, not power loss)")
		walEvery   = flag.Duration("wal-sync-interval", 50*time.Millisecond, "background fsync period under -wal-sync interval")
		walSegment = flag.Int64("wal-segment", 64<<20, "rotate wal segments at this many bytes")
		walCkpt    = flag.Int64("wal-checkpoint", 0, "also write a checkpoint once this many records accumulate past the last one (0 = checkpoint only when a rebuild folds the delta)")

		// Serving.
		addr      = flag.String("addr", ":7411", "HTTP listen address")
		batchMax  = flag.Int("batch-max", 64, "coalescer: flush a pending batch at this many queries")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "coalescer: flush a pending batch after this window")
		cacheSize = flag.Int("cache", 4096, "result cache entries (0 disables)")

		opsAddr  = flag.String("ops-addr", "", "optional private ops listener: /metrics, /healthz, /readyz, and net/http/pprof under /debug/pprof/ (empty disables)")
		slowQ    = flag.Duration("slow-query", 0, "log queries slower than this as one-line JSON records (0 disables)")
		slowQLog = flag.String("slow-query-log", "", "slow-query log file (empty = stderr)")

		// Load driver.
		loadgen     = flag.Bool("loadgen", false, "drive load at a running daemon instead of serving")
		target      = flag.String("target", "http://localhost:7411", "loadgen: server base URL")
		knn         = flag.Int("knn", 1, "loadgen: neighbours per query (0 = range queries of -radius)")
		radius      = flag.Float64("radius", 0.25, "loadgen: range-query radius when -knn 0")
		qps         = flag.Float64("qps", 0, "loadgen: aggregate request rate cap (0 = unthrottled)")
		concurrency = flag.Int("concurrency", 8, "loadgen: client workers")
		duration    = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		reqBatch    = flag.Int("batch", 1, "loadgen: queries per request (1 = single-query form, exercising the coalescer)")
		approxNP    = flag.Int("approx", 0, "loadgen: probe this many prefix buckets per kNN query through the server's approximate path (0 = exact; needs -knn > 0)")
		writeRatio  = flag.Float64("write-ratio", 0, "loadgen: fraction of requests that mutate (insert/delete) instead of query; needs a -rebuild-threshold server")
		scrape      = flag.Bool("scrape", true, "loadgen: scrape the server's /metrics after the run and print the client-vs-server latency comparison")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	// Dataset loading is deferred behind a memoised closure: the serve path
	// binds its socket before touching the dataset, and a -mmap restart over
	// a self-contained container never loads one at all.
	var (
		dsOnce sync.Once
		dsVal  *dataset.Dataset
		dsErr  error
	)
	loadDS := func() (*dataset.Dataset, error) {
		dsOnce.Do(func() {
			dsVal, dsErr = dataset.Load(rng, *gen, *file, *n, *d)
			if dsErr == nil && *mname != "" {
				var m metric.Metric
				if m, dsErr = metric.ByName(*mname); dsErr == nil {
					// e.g. -metric edit over a vector dataset: refuse at
					// startup, not as a panic in a query worker on the first
					// request.
					if dsErr = metric.Probe(m, dsVal.Points[0]); dsErr == nil {
						dsVal.Metric = m
					}
				}
			}
		})
		return dsVal, dsErr
	}

	if *loadgen {
		ds, err := loadDS()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := client.LoadConfig{
			Target:       *target,
			Queries:      ds.Sample(rng, 1024),
			K:            *knn,
			Radius:       *radius,
			QPS:          *qps,
			Concurrency:  *concurrency,
			Duration:     *duration,
			Batch:        *reqBatch,
			WriteRatio:   *writeRatio,
			ApproxNProbe: *approxNP,
		}
		if err := runLoadgen(os.Stdout, cfg, *scrape); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	serving := dpserver.Config{
		BatchMax: *batchMax, BatchWait: *batchWait, CacheSize: *cacheSize,
		SlowQuery: *slowQ,
	}
	if *slowQLog != "" {
		f, err := os.OpenFile(*slowQLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		serving.SlowQueryLog = f
	}
	syncPolicy, err := distperm.ParseSyncPolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := daemonConfig{
		Index: *index, K: *k, Load: *load, Mmap: *mmapFlag,
		Shards: *shards, Partition: *partition, Workers: *workers,
		RebuildThreshold: *rebuild,
		ApproxPrefix:     *approxEll,
		WALDir:           *walDir,
		WALSync:          syncPolicy,
		WALSyncInterval:  *walEvery,
		WALSegment:       *walSegment,
		WALCheckpoint:    *walCkpt,
		Serving:          serving,
	}

	if *freeze != "" {
		if err := runFreeze(os.Stdout, *freeze, loadDS, rng, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	// Bind before loading anything: a restarting daemon exposes its socket
	// in O(1) and the gate answers 503 until the store is ready.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	gate := dpserver.NewGate()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- gate.Serve(ctx, ln) }()
	fmt.Printf("distpermd: listening on %s, loading store\n", ln.Addr())
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			stop()
			<-serveErr
			os.Exit(2)
		}
		go serveOps(ctx, opsLn, gate)
		fmt.Printf("distpermd: ops listener (metrics, pprof) on %s\n", opsLn.Addr())
	}

	srv, src, cleanup, err := buildServer(loadDS, rng, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		stop()
		<-serveErr
		os.Exit(2)
	}
	gate.SetReady(srv)
	info := srv.Info()
	fmt.Printf("distpermd: serving %s (n=%d metric=%s index=%s %d bits, %d shards × %d workers) on %s\n",
		src, info.N, info.Metric, info.Kind, info.Bits, info.Shards, info.Workers/info.Shards, ln.Addr())

	err = <-serveErr
	cleanup() // after the drain: no handler can still touch mapped memory
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("distpermd: drained and closed cleanly")
}

// serveOps answers the daemon's private operations surface on ln until ctx
// is cancelled: /metrics (the published Server's registry; 503 while the
// store loads), /healthz and /readyz (same liveness/readiness split as the
// serving port), and net/http/pprof under /debug/pprof/. Kept off the
// serving listener so profiling endpoints are never exposed to query
// traffic by accident.
func serveOps(ctx context.Context, ln net.Listener, gate *dpserver.Gate) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if s := gate.Server(); s != nil {
			s.Registry().ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"loading"}`)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if gate.Ready() {
			fmt.Fprintln(w, `{"status":"ready"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"loading"}`)
	})
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(sctx)
}

// runFreeze writes the frozen container form of the configured index: build
// (or load) it, then emit the mmap-ready sectioned layout and exit.
func runFreeze(w io.Writer, out string, loadDS func() (*dataset.Dataset, error), rng *rand.Rand, cfg daemonConfig) error {
	ds, err := loadDS()
	if err != nil {
		return err
	}
	db, err := distperm.NewDB(ds.Metric, ds.Points)
	if err != nil {
		return err
	}
	var idx distperm.Index
	if cfg.Load != "" {
		f, err := os.Open(cfg.Load)
		if err != nil {
			return err
		}
		defer f.Close()
		if idx, err = distperm.ReadIndex(f, db); err != nil {
			return fmt.Errorf("loading %s: %w", cfg.Load, err)
		}
	} else if idx, err = distperm.Build(db,
		distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()}); err != nil {
		return err
	}
	px, ok := idx.(*distperm.PermIndex)
	if !ok {
		return fmt.Errorf("only the distance-permutation index has a frozen form; got %q", idx.Name())
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	nb, err := distperm.WriteFrozenIndex(f, px)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distpermd: froze %s over %s (n=%d k=%d) to %s, %d bytes\n",
		idx.Name(), ds.Name, db.N(), px.K(), out, nb)
	return nil
}

// daemonConfig collects the index/serving parameters of one daemon run.
type daemonConfig struct {
	Index            string
	K                int
	Load             string
	Mmap             bool
	Shards           int
	Partition        string
	Workers          int
	RebuildThreshold int
	ApproxPrefix     int
	WALDir           string
	WALSync          distperm.SyncPolicy
	WALSyncInterval  time.Duration
	WALSegment       int64
	WALCheckpoint    int64
	Serving          dpserver.Config
}

// buildServer assembles the serving stack: database from the dataset (or
// from the mapped container itself), index loaded from a container — mapped
// read-only under -mmap — or built through the registries, engine and HTTP
// layers from pkg/dpserver. A rebuild threshold turns the stack mutable:
// the index (built or loaded, including a saved mutable container) is
// wrapped in a MutableEngine and the write endpoints go live; an index
// mapped against an external dataset is then released as soon as the first
// rebuild swaps it out, via MutableConfig.BaseRelease, while a
// self-contained container — whose point vectors are views into the
// mapping that rebuilds carry forward — stays mapped for the daemon's
// lifetime. The returned cleanup runs after the serve drain and releases
// whatever mapping is still held.
func buildServer(loadDS func() (*dataset.Dataset, error), rng *rand.Rand, cfg daemonConfig) (*dpserver.Server, string, func(), error) {
	cleanup := func() {}
	var (
		db     *distperm.DB
		idx    distperm.Index
		store  *distperm.Store
		src    string
		heapDB bool // db lives on the heap, not inside store's mapping

		wal        *distperm.WAL
		walFromSeq uint64
		fromCkpt   bool
	)
	if cfg.WALDir != "" {
		var err error
		wal, err = distperm.OpenWAL(cfg.WALDir, distperm.WALOptions{
			Sync: cfg.WALSync, SyncInterval: cfg.WALSyncInterval, SegmentBytes: cfg.WALSegment,
		})
		if err != nil {
			return nil, "", nil, err
		}
		ck, err := wal.LoadCheckpoint()
		if err != nil {
			wal.Close()
			return nil, "", nil, fmt.Errorf("wal recovery: %w", err)
		}
		if ck != nil {
			// The checkpoint is self-contained: its database and "mutable"
			// container replace the dataset/-load boot entirely, and replay
			// resumes from the sequence it covers.
			db, idx = ck.Snapshot.DB(), ck.Snapshot
			walFromSeq, fromCkpt = ck.Seq, true
			src = fmt.Sprintf("%s checkpoint (seq %d)", cfg.WALDir, ck.Seq)
		}
	}
	// On any failure below the open log must not stay held.
	walOK := false
	defer func() {
		if wal != nil && !walOK {
			wal.Close()
		}
	}()
	switch {
	case fromCkpt: // store recovered above
	case cfg.Mmap:
		if cfg.Load == "" {
			return nil, "", nil, fmt.Errorf("-mmap needs -load <container>")
		}
		var err error
		store, err = distperm.Load(cfg.Load, distperm.LoadOptions{Mmap: true})
		src = cfg.Load + " (mapped, self-contained)"
		if errors.Is(err, distperm.ErrNeedDB) {
			// The container embeds no points: map it against the dataset.
			ds, derr := loadDS()
			if derr != nil {
				return nil, "", nil, derr
			}
			if db, derr = distperm.NewDB(ds.Metric, ds.Points); derr != nil {
				return nil, "", nil, derr
			}
			store, err = distperm.Load(cfg.Load, distperm.LoadOptions{Mmap: true, DB: db})
			src = ds.Name + " (index mapped)"
			heapDB = true
		}
		if err != nil {
			return nil, "", nil, err
		}
		cleanup = func() { store.Close() }
		db, idx = store.DB, store.Index
	default:
		ds, err := loadDS()
		if err != nil {
			return nil, "", nil, err
		}
		src = ds.Name
		if db, err = distperm.NewDB(ds.Metric, ds.Points); err != nil {
			return nil, "", nil, err
		}
	}
	mutable := cfg.RebuildThreshold > 0 || wal != nil
	var p distperm.Partitioner
	if cfg.Shards > 1 || mutable {
		var err error
		if p, err = distperm.PartitionerByName(cfg.Partition); err != nil {
			return nil, "", nil, err
		}
	}
	var err error
	switch {
	case idx != nil: // mapped or checkpoint-recovered above
	case cfg.Load != "":
		f, err := os.Open(cfg.Load)
		if err != nil {
			return nil, "", nil, err
		}
		defer f.Close()
		if idx, err = distperm.ReadIndex(f, db); err != nil {
			return nil, "", nil, fmt.Errorf("loading %s: %w", cfg.Load, err)
		}
	case cfg.Shards > 1:
		if idx, err = distperm.BuildSharded(db,
			distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()}, cfg.Shards, p); err != nil {
			return nil, "", nil, err
		}
	default:
		if idx, err = distperm.Build(db,
			distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()}); err != nil {
			return nil, "", nil, err
		}
	}
	if cfg.ApproxPrefix > 0 {
		configurePrefix(idx, cfg.ApproxPrefix)
	}
	if !mutable {
		srv, err := dpserver.NewFromIndex(db, idx, cfg.Workers, cfg.Serving)
		if err != nil {
			cleanup()
			return nil, "", nil, err
		}
		return srv, src, cleanup, nil
	}
	mcfg := distperm.MutableConfig{
		Spec:             distperm.Spec{Index: cfg.Index, K: cfg.K, Seed: rng.Int63()},
		Workers:          cfg.Workers,
		RebuildThreshold: cfg.RebuildThreshold,
	}
	if store != nil && heapDB {
		// Rebuilds re-index the live Points but keep the Point values
		// themselves. Over an external heap database that leaves nothing
		// referencing the mapped index once the first swap drains, so the
		// mapping can be released then. A self-contained container is
		// different: its Points are vector views into the mapping, the
		// rebuilt base still reads them, and releasing early would turn
		// every post-rebuild query into a fault — so it stays mapped until
		// the final cleanup.
		mcfg.BaseRelease = func() { store.Close() }
	}
	if cfg.Load != "" || fromCkpt {
		// Rebuilds of a loaded or checkpoint-recovered store keep the
		// loaded shape (kind and pivot/site count) rather than following
		// the possibly-defaulted -index/-k flags: resuming a store must not
		// silently rebuild it into a different index.
		mcfg.Spec = inferSpec(idx)
		mcfg.Spec.Seed = rng.Int63()
	}
	if cfg.Shards > 1 {
		mcfg.Shards = cfg.Shards
		mcfg.Partitioner = p
	} else if sx := shardedBase(idx); (cfg.Load != "" || fromCkpt) && sx != nil {
		// A loaded sharded store stays sharded across rebuilds even when
		// -shards was not repeated on the command line. The partition map
		// in the container carries no strategy name, so placement follows
		// -partition (default roundrobin).
		mcfg.Shards = sx.NumShards()
		mcfg.Partitioner = p
	}
	var me *distperm.MutableEngine
	if mi, ok := idx.(*distperm.MutableIndex); ok {
		// A saved mutable container resumes with its write history; the
		// loaded database must hold its base points then its delta points.
		me, err = distperm.NewMutableEngineFrom(mi, mcfg)
	} else {
		me, err = distperm.WrapMutable(db, idx, mcfg)
	}
	if err != nil {
		cleanup()
		return nil, "", nil, err
	}
	if wal != nil {
		// Recovery order matters: replay the log tail into the engine first
		// (the engine is not attached yet, so replayed records are not
		// re-appended), then attach so new writes log before acknowledging.
		applied, skipped, rerr := me.ReplayWAL(wal, walFromSeq)
		if rerr == nil {
			rerr = me.AttachWAL(wal)
		}
		if rerr != nil {
			me.Close()
			cleanup()
			return nil, "", nil, fmt.Errorf("wal recovery: %w", rerr)
		}
		src = fmt.Sprintf("%s, wal %s (replayed %d records, skipped %d, sync %s)",
			src, cfg.WALDir, applied, skipped, cfg.WALSync)
	}
	srv, err := dpserver.NewFromMutable(me, cfg.Serving)
	if err != nil {
		me.Close()
		return nil, "", nil, err
	}
	if wal != nil {
		// The checkpointer folds the log behind durable snapshots; cleanup
		// (after the serve drain, when the engine is closed) stops it and
		// closes the log last.
		stopCkpt := make(chan struct{})
		go runCheckpoints(me, wal, cfg.WALCheckpoint, stopCkpt)
		prev := cleanup
		cleanup = func() {
			close(stopCkpt)
			prev()
			wal.Close()
		}
		walOK = true
	}
	return srv, src, cleanup, nil
}

// runCheckpoints folds the write-ahead log behind durable snapshots: after
// every background rebuild (the delta is freshly folded, so the snapshot
// is at its smallest) and, when recordEvery > 0, once that many records
// accumulate past the last checkpoint. Each checkpoint prunes the log
// segments and checkpoint files it supersedes.
func runCheckpoints(me *distperm.MutableEngine, wal *distperm.WAL, recordEvery int64, stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	var lastRebuilds int64
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		ms := me.MutationStats()
		ws := me.WALStats()
		need := ms.Rebuilds > lastRebuilds
		if recordEvery > 0 && ws.Seq-ws.CheckpointSeq >= uint64(recordEvery) {
			need = true
		}
		if !need {
			continue
		}
		lastRebuilds = ms.Rebuilds
		snap, seq, err := me.CheckpointSnapshot()
		if err == nil && seq > ws.CheckpointSeq {
			err = wal.WriteCheckpoint(snap, seq)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "distpermd: wal checkpoint: %v\n", err)
		}
	}
}

// inferSpec derives a rebuild Spec from a loaded index: its kind and, for
// the parameterised kinds, its pivot/site count, so a resumed store folds
// back into the shape it was saved with. Containers defer to what they
// embed (a sharded container to its first shard, a mutable one to its
// base); kinds without a K leave it zero.
func inferSpec(idx distperm.Index) distperm.Spec {
	switch x := idx.(type) {
	case *distperm.ShardedIndex:
		return inferSpec(x.Shard(0))
	case *distperm.MutableIndex:
		return inferSpec(x.Base())
	case *distperm.PermIndex:
		return distperm.Spec{Index: "distperm", K: x.K()}
	case *sisap.LAESA:
		return distperm.Spec{Index: "laesa", K: len(x.Pivots())}
	default:
		return distperm.Spec{Index: idx.Name()}
	}
}

// configurePrefix walks idx down to every distance-permutation index inside
// it (the shards of a sharded container, a mutable container's base) and
// rebuilds their prefix-bucket directories at permutation-prefix length ell.
// Indexes without an approximate form are left alone, as are indexes a
// later background rebuild produces — those build the default directory
// lazily on their first approximate query.
func configurePrefix(idx distperm.Index, ell int) {
	switch x := idx.(type) {
	case *distperm.PermIndex:
		x.ConfigurePrefixBuckets(ell)
	case *distperm.ShardedIndex:
		for i := 0; i < x.NumShards(); i++ {
			configurePrefix(x.Shard(i), ell)
		}
	case *distperm.MutableIndex:
		configurePrefix(x.Base(), ell)
	}
}

// shardedBase unwraps idx to the sharded container it serves from, if any:
// the index itself, or a mutable snapshot's base.
func shardedBase(idx distperm.Index) *distperm.ShardedIndex {
	if mi, ok := idx.(*distperm.MutableIndex); ok {
		idx = mi.Base()
	}
	sx, _ := idx.(*distperm.ShardedIndex)
	return sx
}

// runLoadgen drives RunLoad and prints the report: overall and
// per-endpoint client-side percentiles and, with scrape, the server's own
// /metrics view of the same traffic next to them — the wire-vs-engine
// latency split in one table.
func runLoadgen(w io.Writer, cfg client.LoadConfig, scrape bool) error {
	mode := fmt.Sprintf("%d-NN", cfg.K)
	if cfg.K == 0 {
		mode = fmt.Sprintf("range r=%g", cfg.Radius)
	} else if cfg.ApproxNProbe > 0 {
		mode = fmt.Sprintf("approximate %d-NN (nprobe %d)", cfg.K, cfg.ApproxNProbe)
	}
	fmt.Fprintf(w, "loadgen: %s queries × batch %d at %s (%d workers, qps cap %g) for %v\n",
		mode, max(cfg.Batch, 1), cfg.Target, max(cfg.Concurrency, 1), cfg.QPS, cfg.Duration)
	report, err := client.RunLoad(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sent %d requests (%d queries, %d errors) in %v: %.0f queries/s, latency p50 %v p95 %v p99 %v\n",
		report.Requests, report.Queries, report.Errors, report.Elapsed.Round(time.Millisecond),
		report.QueriesPerSecond, report.P50, report.P95, report.P99)
	if report.Inserts > 0 || report.Deletes > 0 {
		fmt.Fprintf(w, "mutations: %d inserts, %d deletes\n", report.Inserts, report.Deletes)
	}
	if report.ApproxRequests > 0 {
		fmt.Fprintf(w, "approx: %d requests, mean candidate fraction %.3f (share of the database scanned per query)\n",
			report.ApproxRequests, report.MeanCandidateFraction)
	}
	endpoints := make([]string, 0, len(report.PerEndpoint))
	for ep := range report.PerEndpoint {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		s := report.PerEndpoint[ep]
		fmt.Fprintf(w, "  client %-7s %7d reqs  p50 %-10v p95 %-10v p99 %v\n",
			ep, s.Count, s.P50, s.P95, s.P99)
	}
	if !scrape {
		return nil
	}
	// The run's context has expired; the scrape gets its own deadline.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	fams, err := client.New(cfg.Target).Metrics(sctx)
	if err != nil {
		fmt.Fprintf(w, "  (server /metrics scrape failed: %v)\n", err)
		return nil
	}
	secs := func(v float64) time.Duration { return time.Duration(math.Round(v * 1e9)) }
	for _, ep := range endpoints {
		snap, ok := fams["dpserver_request_duration_seconds"].HistogramSnapshot(obs.Labels{"endpoint": ep})
		if !ok || snap.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "  server %-7s %7d reqs  p50 %-10v p95 %-10v p99 %v\n",
			ep, snap.Count, secs(snap.Quantile(0.50)), secs(snap.Quantile(0.95)), secs(snap.Quantile(0.99)))
	}
	if snap, ok := fams["distperm_engine_query_duration_seconds"].HistogramSnapshot(nil); ok && snap.Count > 0 {
		fmt.Fprintf(w, "  engine  query   %7d qs    p50 %-10v p95 %-10v p99 %v\n",
			snap.Count, secs(snap.Quantile(0.50)), secs(snap.Quantile(0.95)), secs(snap.Quantile(0.99)))
	}
	return nil
}
