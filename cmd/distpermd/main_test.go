package main

import (
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distperm/internal/dataset"
	"distperm/pkg/distperm"
	"distperm/pkg/dpserver"
	"distperm/pkg/dpserver/client"
	"distperm/pkg/obs"
)

// TestBuildServerModes covers the three index sources: built through the
// registry, built sharded through the partitioner registry, and loaded from
// a DPERMIDX container.
func TestBuildServerModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, err := dataset.Load(rng, "uniform", "", 300, 3)
	if err != nil {
		t.Fatal(err)
	}

	dsf := func() (*dataset.Dataset, error) { return ds, nil }
	srv, _, cleanup, err := buildServer(dsf, rng, daemonConfig{Index: "distperm", K: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if info := srv.Info(); info.Kind != "distperm" || info.Shards != 1 {
		t.Errorf("built server info %+v", info)
	}
	srv.Close()

	srv, _, _, err = buildServer(dsf, rng, daemonConfig{Index: "distperm", K: 6, Shards: 3, Partition: "hash"})
	if err != nil {
		t.Fatal(err)
	}
	if info := srv.Info(); info.Kind != "sharded" || info.Shards != 3 {
		t.Errorf("sharded server info %+v", info)
	}
	srv.Close()

	// Round-trip through a container file, the -load path.
	db, err := distperm.NewDB(ds.Metric, ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := distperm.BuildSharded(db, distperm.Spec{Index: "vptree", Seed: 4}, 2, distperm.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.dpermidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distperm.WriteIndex(f, idx); err != nil {
		t.Fatal(err)
	}
	f.Close()
	srv, _, _, err = buildServer(dsf, rng, daemonConfig{Load: path})
	if err != nil {
		t.Fatal(err)
	}
	if info := srv.Info(); info.Kind != "sharded" || info.Shards != 2 {
		t.Errorf("loaded server info %+v", info)
	}
	srv.Close()

	// A rebuild threshold turns any of the sources mutable.
	srv, _, _, err = buildServer(dsf, rng, daemonConfig{
		Index: "distperm", K: 6, Shards: 2, Partition: "roundrobin", RebuildThreshold: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info := srv.Info(); !info.Mutable || info.Kind != "mutable" || info.Base != "sharded" || info.Shards != 2 {
		t.Errorf("mutable sharded server info %+v", info)
	}
	srv.Close()
	srv, _, _, err = buildServer(dsf, rng, daemonConfig{Load: path, Partition: "roundrobin", RebuildThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The loaded store keeps its sharding across rebuilds even though
	// -shards was not repeated on the command line.
	if info := srv.Info(); !info.Mutable || info.Base != "sharded" || info.Shards != 2 {
		t.Errorf("mutable loaded server info %+v", info)
	}
	srv.Close()

	// A saved mutable container resumes as a mutable server.
	me, err := distperm.NewMutableEngine(db, distperm.MutableConfig{
		Spec: distperm.Spec{Index: "distperm", K: 6, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := me.Insert(ds.Points[0]); err != nil {
		t.Fatal(err)
	}
	snap, err := me.Snapshot()
	me.Close()
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(t.TempDir(), "mutable.dpermidx")
	mf, err := os.Create(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distperm.WriteIndex(mf, snap); err != nil {
		t.Fatal(err)
	}
	mf.Close()
	// The resumed database is base + delta: the snapshot's own point set.
	mds := &dataset.Dataset{Name: "resumed", Metric: snap.DB().Metric, Points: snap.DB().Points}
	srv, _, _, err = buildServer(func() (*dataset.Dataset, error) { return mds, nil }, rng, daemonConfig{Load: mpath, Partition: "roundrobin", RebuildThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	if info := srv.Info(); !info.Mutable || info.N != 301 {
		t.Errorf("resumed mutable server info %+v", info)
	}
	srv.Close()

	// Failure modes are errors, not panics.
	for _, cfg := range []daemonConfig{
		{Index: "bogus"},
		{Index: "distperm", K: 6, Shards: 2, Partition: "modulo"},
		{Index: "distperm", K: 6, RebuildThreshold: 16, Partition: "modulo"},
		{Load: filepath.Join(t.TempDir(), "missing.dpermidx")},
	} {
		if _, _, _, err := buildServer(dsf, rng, cfg); err == nil {
			t.Errorf("config %+v should error", cfg)
		}
	}
}

// TestDaemonEndToEnd runs the serving stack the way main does — listener,
// Serve, graceful cancellation — and drives it with the client and the
// loadgen driver.
func TestDaemonEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, err := dataset.Load(rng, "uniform", "", 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, cleanup, err := buildServer(func() (*dataset.Dataset, error) { return ds, nil }, rng, daemonConfig{
		Index: "distperm", K: 6, Workers: 2,
		Serving: dpserver.Config{BatchMax: 8, BatchWait: time.Millisecond, CacheSize: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	base := "http://" + ln.Addr().String()
	c := client.New(base)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	rs, err := c.KNN(context.Background(), ds.Points[7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[0].ID != 7 || rs[0].Distance != 0 {
		t.Errorf("self-query answer %v", rs)
	}

	if err := c.Ready(context.Background()); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runLoadgen(&out, client.LoadConfig{
		Target:      base,
		Queries:     ds.Sample(rng, 64),
		K:           2,
		Concurrency: 4,
		Duration:    100 * time.Millisecond,
	}, true); err != nil {
		t.Fatal(err)
	}
	// The scrape-on report carries both halves of the comparison: client-
	// side per-endpoint percentiles and the server's /metrics view.
	for _, want := range []string{"loadgen: 2-NN", "queries/s", "p50", "p95", "p99", " 0 errors",
		"client knn", "server knn", "engine"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("loadgen report missing %q:\n%s", want, out.String())
		}
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want clean shutdown", err)
	}
}

// TestFreezeThenMmapServe is the daemon-level restart story: freeze a built
// index to a container, then bring up a server over it with -mmap and no
// dataset at all — the self-contained O(1) open — and check it answers
// exactly like the original build. The mutable variant must come up too,
// with the mapped base released to BaseRelease semantics.
func TestFreezeThenMmapServe(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, err := dataset.Load(rng, "uniform", "", 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "index.frozen")
	var out strings.Builder
	if err := runFreeze(&out, path, func() (*dataset.Dataset, error) { return ds, nil },
		rand.New(rand.NewSource(9)), daemonConfig{Index: "distperm", K: 6}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "froze distperm") {
		t.Errorf("freeze report: %s", out.String())
	}

	// Reference answers from a heap build with the same seed.
	refSrv, _, refClean, err := buildServer(func() (*dataset.Dataset, error) { return ds, nil },
		rand.New(rand.NewSource(9)), daemonConfig{Index: "distperm", K: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer refClean()
	defer refSrv.Close()

	noDS := func() (*dataset.Dataset, error) {
		t.Error("self-contained mmap serve loaded the dataset")
		return nil, os.ErrNotExist
	}
	srv, src, cleanup, err := buildServer(noDS, rng, daemonConfig{Load: path, Mmap: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "mapped") {
		t.Errorf("source label %q", src)
	}
	if info := srv.Info(); info.Kind != "distperm" || info.N != 500 {
		t.Errorf("mapped server info %+v", info)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	c := client.New("http://" + ln.Addr().String())
	for i := 0; i < 20; i++ {
		got, err := c.KNN(context.Background(), ds.Points[i*7], 4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].ID != i*7 || got[0].Distance != 0 {
			t.Fatalf("mapped self-query %d answered %v", i*7, got)
		}
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	cleanup() // munmap after drain, as main does

	// The mutable wrap over the same mapped container. The container is
	// self-contained, so its point vectors are views into the mapping and
	// rebuilds carry those views forward into the new base: the mapping
	// must stay live across the fold. Insert past the threshold, wait for
	// the background rebuild, and re-query the original points — releasing
	// the mapping on rebuild would make these reads fault.
	msrv, _, mcleanup, err := buildServer(noDS, rng,
		daemonConfig{Load: path, Mmap: true, Workers: 2, Partition: "roundrobin", RebuildThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	if info := msrv.Info(); !info.Mutable || info.Base != "distperm" {
		t.Errorf("mutable mapped server info %+v", info)
	}
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mctx, mcancel := context.WithCancel(context.Background())
	mserved := make(chan error, 1)
	go func() { mserved <- msrv.Serve(mctx, mln) }()
	mc := client.New("http://" + mln.Addr().String())
	extra := dataset.UniformVectors(rand.New(rand.NewSource(11)), 70, 3)
	if _, err := mc.InsertBatch(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := mc.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Mutation != nil && st.Mutation.Rebuilds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background rebuild did not fold the inserts")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		got, err := mc.KNN(context.Background(), ds.Points[i*7], 4)
		if err != nil {
			t.Fatal(err)
		}
		if got[0].ID != i*7 || got[0].Distance != 0 {
			t.Fatalf("post-rebuild mapped self-query %d answered %v", i*7, got)
		}
	}
	mcancel()
	if err := <-mserved; err != nil {
		t.Fatalf("mutable Serve: %v", err)
	}
	mcleanup()
}

// TestServeOps covers the private ops listener: health/readiness mirror
// the gate's state, /metrics answers 503 while loading and valid
// exposition once the store is published, and the pprof index is mounted.
func TestServeOps(t *testing.T) {
	gate := dpserver.NewGate()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveOps(ctx, ln, gate) }()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Loading: alive, not ready, no metrics yet.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("loading /healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("loading /readyz = %d, want 503", code)
	}
	if code, _ := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("loading /metrics = %d, want 503", code)
	}

	// Publish a server: readiness flips and /metrics serves the registry.
	rng := rand.New(rand.NewSource(21))
	ds, err := dataset.Load(rng, "uniform", "", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, cleanup, err := buildServer(func() (*dataset.Dataset, error) { return ds, nil }, rng,
		daemonConfig{Index: "distperm", K: 6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	gate.SetReady(srv)
	defer srv.Close()
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("ready /readyz = %d %q", code, body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("ready /metrics = %d", code)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ops /metrics not valid exposition: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "distperm_engine_workers" {
			found = true
		}
	}
	if !found {
		t.Error("ops /metrics missing distperm_engine_workers")
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline = %d %q", code, body)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveOps: %v", err)
	}
}
