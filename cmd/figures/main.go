// Command figures regenerates the data behind the paper's Figures 1–7 and
// the §5 counterexample.
//
// Usage:
//
//	figures -fig voronoi          # Figs 1-4: cell counts + ASCII renderings
//	figures -fig prefix           # Fig 5: prefix-metric distance matrix
//	figures -fig construction -k 5 -p 2
//	figures -fig coverage         # Fig 7: cells the database cannot hit
//	figures -fig counterexample -n 1000000
//	figures -fig search -d 3 -k 5 -trials 50   # rerun the discovery search
//	figures -fig all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"distperm/internal/experiments"
	"distperm/internal/metric"
	"distperm/internal/sisap"
)

func main() {
	var (
		fig    = flag.String("fig", "all", `"voronoi", "prefix", "construction", "coverage", "counterexample", "convergence", "recall", "approx", "search", or "all"`)
		k      = flag.Int("k", 5, "sites for the construction / search")
		p      = flag.Float64("p", 2, "Lp parameter for the construction (1, 2, or +Inf via -p inf)")
		d      = flag.Int("d", 3, "dimension for the counterexample search")
		trials = flag.Int("trials", 50, "site draws for the counterexample search")
		n      = flag.Int("n", 0, "override database size")
		grid   = flag.Int("grid", 0, "override rasterisation grid side")
		seed   = flag.Int64("seed", 1, "random seed")
		mname  = flag.String("metric", "L1", "metric for the search: L1, L2, Linf")
		refine = flag.Bool("refine", false, "add the octree-refined unit-cube cell count to the counterexample (slow)")
	)
	flag.Parse()

	cfg := experiments.DefaultScale()
	if *n > 0 {
		cfg.VectorN = *n
	}
	if *grid > 0 {
		cfg.GridSide = *grid
	}
	cfg.Seed = *seed

	var m metric.Metric
	switch *mname {
	case "L1":
		m = metric.L1{}
	case "L2":
		m = metric.L2{}
	case "Linf":
		m = metric.LInf{}
	default:
		fmt.Fprintf(os.Stderr, "unknown metric %q\n", *mname)
		os.Exit(2)
	}

	w := os.Stdout
	show := func(name string) bool { return *fig == name || *fig == "all" }
	if show("voronoi") {
		experiments.RunFigureVoronoi(cfg).Write(w)
	}
	if show("prefix") {
		experiments.RunFigurePrefix().Write(w)
	}
	if show("construction") {
		kk := *k
		if *fig == "all" && kk > 5 {
			kk = 5 // keep the default sweep quick
		}
		pp := *p
		if math.IsInf(pp, 1) {
			pp = math.Inf(1)
		}
		experiments.RunFigureConstruction(kk, pp).Write(w)
	}
	if show("coverage") {
		experiments.RunFigureCoverage(cfg).Write(w)
	}
	if show("counterexample") {
		if *refine {
			experiments.RunCounterexampleRefined(cfg, 10, 6).Write(w)
		} else {
			experiments.RunCounterexample(cfg).Write(w)
		}
	}
	if show("convergence") {
		sizes := []int{1_000, 10_000, 100_000, cfg.VectorN}
		experiments.RunConvergence(cfg, metric.L2{}, 2, 5, sizes).Write(w)
		experiments.RunConvergence(cfg, m, *d, *k, sizes).Write(w)
	}
	if show("sitesweep") {
		experiments.RunSiteSweep(cfg, *d, []int{2, 3, 4, 6, 8, 12, 16, 24}, 100).Write(w)
	}
	if show("recall") {
		for _, pd := range []sisap.PermDistance{sisap.Footrule, sisap.KendallTau, sisap.SpearmanRho} {
			experiments.RunRecallCurve(cfg, *d, *k, 100, pd).Write(w)
		}
	}
	if show("approx") {
		for _, clustered := range []bool{false, true} {
			experiments.RunApproxSweep(cfg, *d, 12, 10, 100, clustered).Write(w)
		}
	}
	if *fig == "search" {
		experiments.RunCounterexampleSearch(cfg, m, *d, *k, *trials).Write(w)
	}
}
